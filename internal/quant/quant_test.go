package quant

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// clusteredData generates nPer points around each of k well-separated
// centres.
func clusteredData(k, nPer, dim int, spread float64, seed uint64) ([]mat.Vec, []mat.Vec) {
	rng := rand.New(rand.NewPCG(seed, 99))
	centers := make([]mat.Vec, k)
	for i := range centers {
		centers[i] = mat.Scale(mat.UnitGaussianVec(dim, uint64(i)*7+seed), 10)
	}
	var data []mat.Vec
	for i := 0; i < k; i++ {
		for j := 0; j < nPer; j++ {
			v := mat.Clone(centers[i])
			for d := range v {
				v[d] += float32(rng.NormFloat64() * spread)
			}
			data = append(data, v)
		}
	}
	return data, centers
}

func TestKMeansRecoversClusters(t *testing.T) {
	data, centers := clusteredData(4, 50, 8, 0.1, 1)
	res := KMeans(data, 4, 50, 2)
	if len(res.Centroids) != 4 {
		t.Fatalf("centroids = %d", len(res.Centroids))
	}
	// Every true centre must be close to some learned centroid.
	for _, c := range centers {
		best := float32(math.MaxFloat32)
		for _, l := range res.Centroids {
			if d := mat.SqDist(c, l); d < best {
				best = d
			}
		}
		if best > 1 {
			t.Fatalf("a true centre was not recovered, dist² = %v", best)
		}
	}
}

func TestKMeansAssignConsistent(t *testing.T) {
	data, _ := clusteredData(3, 30, 6, 0.1, 3)
	res := KMeans(data, 3, 50, 4)
	for i, v := range data {
		want := NearestCentroid(res.Centroids, v)
		if res.Assign[i] != want {
			t.Fatalf("assignment %d inconsistent with nearest centroid", i)
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if res := KMeans(nil, 4, 10, 1); len(res.Centroids) != 0 {
		t.Fatal("empty data")
	}
	// Fewer points than k: every point is a centroid.
	data := []mat.Vec{{1, 0}, {0, 1}}
	res := KMeans(data, 5, 10, 1)
	if len(res.Centroids) != 2 || res.Assign[0] != 0 || res.Assign[1] != 1 {
		t.Fatalf("small-data case: %+v", res)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	data, _ := clusteredData(3, 20, 4, 0.2, 5)
	a := KMeans(data, 3, 30, 7)
	b := KMeans(data, 3, 30, 7)
	for i := range a.Centroids {
		if !mat.AlmostEqual(a.Centroids[i], b.Centroids[i], 0) {
			t.Fatal("same seed must reproduce centroids")
		}
	}
}

func TestNearestCentroidEmpty(t *testing.T) {
	if NearestCentroid(nil, mat.Vec{1}) != -1 {
		t.Fatal("empty centroids must return -1")
	}
}

func TestTrainPQValidation(t *testing.T) {
	if _, err := TrainPQ(nil, 4, 16, 1); err == nil {
		t.Fatal("empty data must error")
	}
	data := []mat.Vec{mat.UnitGaussianVec(10, 1)}
	if _, err := TrainPQ(data, 3, 2, 1); err == nil {
		t.Fatal("dim not divisible by P must error")
	}
	if _, err := TrainPQ(data, 2, 16, 1); err == nil {
		t.Fatal("fewer vectors than M must error")
	}
}

func TestPQRoundTripSmallError(t *testing.T) {
	data, _ := clusteredData(8, 40, 16, 0.05, 11)
	pq, err := TrainPQ(data, 4, 16, 12)
	if err != nil {
		t.Fatal(err)
	}
	mse := pq.QuantizationError(data)
	// Well-clustered data must quantise accurately.
	if mse > 0.5 {
		t.Fatalf("quantization MSE = %v too high", mse)
	}
}

func TestPQEncodeDims(t *testing.T) {
	data, _ := clusteredData(4, 30, 16, 0.1, 13)
	pq, err := TrainPQ(data, 4, 8, 14)
	if err != nil {
		t.Fatal(err)
	}
	code := pq.Encode(data[0])
	if len(code) != 4 {
		t.Fatalf("code len = %d", len(code))
	}
	if pq.Dim() != 16 {
		t.Fatalf("dim = %d", pq.Dim())
	}
	dec := pq.Decode(code)
	if len(dec) != 16 {
		t.Fatalf("decode len = %d", len(dec))
	}
}

func TestADCMatchesDecodedDot(t *testing.T) {
	data, _ := clusteredData(6, 30, 16, 0.2, 15)
	pq, err := TrainPQ(data, 4, 12, 16)
	if err != nil {
		t.Fatal(err)
	}
	q := mat.UnitGaussianVec(16, 77)
	table := pq.DotTable(q)
	for _, v := range data[:20] {
		code := pq.Encode(v)
		adc := pq.ApproxDot(table, code)
		exact := mat.Dot(q, pq.Decode(code))
		if math.Abs(float64(adc-exact)) > 1e-4 {
			t.Fatalf("ADC %v != decoded dot %v", adc, exact)
		}
	}
}

func TestADCApproximatesTrueDot(t *testing.T) {
	data, _ := clusteredData(8, 50, 16, 0.05, 17)
	pq, err := TrainPQ(data, 4, 16, 18)
	if err != nil {
		t.Fatal(err)
	}
	q := mat.Normalized(data[3])
	table := pq.DotTable(q)
	var errSum float64
	for _, v := range data {
		adc := float64(pq.ApproxDot(table, pq.Encode(v)))
		truth := float64(mat.Dot(q, v))
		errSum += math.Abs(adc - truth)
	}
	if avg := errSum / float64(len(data)); avg > 0.6 {
		t.Fatalf("mean |ADC - exact| = %v too high", avg)
	}
}

// Property: for any vector, Decode(Encode(v)) is the nearest codebook
// reconstruction per subspace (quantizer optimality within the codebook).
func TestPQNearestPerSubspaceProperty(t *testing.T) {
	data, _ := clusteredData(5, 40, 8, 0.3, 19)
	pq, err := TrainPQ(data, 2, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		v := mat.UnitGaussianVec(8, seed)
		code := pq.Encode(v)
		for sp := 0; sp < pq.P; sp++ {
			part := v[sp*pq.SubDim : (sp+1)*pq.SubDim]
			want := NearestCentroid(pq.Codebooks[sp], part)
			if int(code[sp]) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodePanicsOnWrongDim(t *testing.T) {
	data, _ := clusteredData(4, 20, 8, 0.2, 21)
	pq, err := TrainPQ(data, 2, 8, 22)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected dim panic")
		}
	}()
	pq.Encode(mat.Vec{1, 2, 3})
}
