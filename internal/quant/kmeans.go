// Package quant implements vector quantization: Lloyd's k-means with
// k-means++ seeding, and product quantization (PQ) with asymmetric-distance
// lookup tables — the compression and coarse-indexing machinery of
// Section V-B of the paper.
package quant

import (
	"errors"
	"math/rand/v2"

	"repro/internal/mat"
)

// KMeansResult holds trained centroids and the final assignment of each
// training vector.
type KMeansResult struct {
	Centroids []mat.Vec
	Assign    []int
}

// KMeans clusters data into k centroids using Lloyd's iteration (the
// codebook trainer the paper cites) with k-means++ seeding. It runs at most
// maxIter iterations or until assignments stabilise. If len(data) <= k each
// point becomes its own centroid.
func KMeans(data []mat.Vec, k, maxIter int, seed uint64) *KMeansResult {
	if len(data) == 0 || k <= 0 {
		return &KMeansResult{}
	}
	if len(data) <= k {
		res := &KMeansResult{Assign: make([]int, len(data))}
		for i, v := range data {
			res.Centroids = append(res.Centroids, mat.Clone(v))
			res.Assign[i] = i
		}
		return res
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x6b6d65616e73)) // "kmeans"
	dim := len(data[0])

	// k-means++ seeding.
	centroids := make([]mat.Vec, 0, k)
	centroids = append(centroids, mat.Clone(data[rng.IntN(len(data))]))
	d2 := make([]float64, len(data))
	for i, v := range data {
		d2[i] = float64(mat.SqDist(v, centroids[0]))
	}
	for len(centroids) < k {
		var sum float64
		for _, d := range d2 {
			sum += d
		}
		var next int
		if sum <= 0 {
			next = rng.IntN(len(data))
		} else {
			r := rng.Float64() * sum
			acc := 0.0
			next = len(data) - 1
			for i, d := range d2 {
				acc += d
				if acc >= r {
					next = i
					break
				}
			}
		}
		c := mat.Clone(data[next])
		centroids = append(centroids, c)
		for i, v := range data {
			if nd := float64(mat.SqDist(v, c)); nd < d2[i] {
				d2[i] = nd
			}
		}
	}

	// Lloyd's iterations.
	assign := make([]int, len(data))
	for i := range assign {
		assign[i] = -1
	}
	counts := make([]int, k)
	sums := make([]mat.Vec, k)
	for i := range sums {
		sums[i] = mat.NewVec(dim)
	}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, v := range data {
			best, bestD := 0, mat.SqDist(v, centroids[0])
			for c := 1; c < k; c++ {
				if d := mat.SqDist(v, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		for c := 0; c < k; c++ {
			counts[c] = 0
			for j := range sums[c] {
				sums[c][j] = 0
			}
		}
		for i, v := range data {
			c := assign[i]
			counts[c]++
			mat.Add(sums[c], sums[c], v)
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster to the point farthest
				// from its centroid.
				far, farD := 0, float32(-1)
				for i, v := range data {
					if d := mat.SqDist(v, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centroids[c], data[far])
				continue
			}
			inv := 1 / float32(counts[c])
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] * inv
			}
		}
	}
	return &KMeansResult{Centroids: centroids, Assign: assign}
}

// NearestCentroid returns the index of the centroid closest to v in
// Euclidean distance.
func NearestCentroid(centroids []mat.Vec, v mat.Vec) int {
	if len(centroids) == 0 {
		return -1
	}
	best, bestD := 0, mat.SqDist(v, centroids[0])
	for c := 1; c < len(centroids); c++ {
		if d := mat.SqDist(v, centroids[c]); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// ErrNotEnoughData reports a training set too small for the requested
// quantizer shape.
var ErrNotEnoughData = errors.New("quant: not enough training data")
