//go:build amd64 && !purego

#include "textflag.h"

// func dotInt8AVX2(a, b *int8, n int) int32
//
// Widening-multiply dot over the first n int8 elements, n a positive
// multiple of 16. Each iteration sign-extends 16 codes from each side to
// int16 (VPMOVSXBW), multiplies and pairwise-adds into 8 int32 partials
// (VPMADDWD; a pair sum is bounded by 2·127², far inside int32), and
// accumulates with VPADDD.
// Integer addition is associative, so the 8-lane accumulation returns
// exactly the same bits as the scalar loop in int8.go for every input —
// there is no lane-order contract to preserve, only overflow bounds,
// which match DotInt8's documented dim ≤ 133000.
TEXT ·dotInt8AVX2(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX

	VPXOR Y0, Y0, Y0       // 8 int32 accumulators
	XORQ  AX, AX

loop16:
	VPMOVSXBW (SI)(AX*1), Y1    // 16 int8 → 16 int16
	VPMOVSXBW (DI)(AX*1), Y2
	VPMADDWD  Y1, Y2, Y2        // 8 int32 pairwise product sums
	VPADDD    Y2, Y0, Y0
	ADDQ      $16, AX
	CMPQ      AX, CX
	JL        loop16

	// Horizontal sum of the 8 lanes.
	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0x4E, X0, X1  // swap 64-bit halves
	VPADDD       X1, X0, X0
	VPSHUFD      $0xB1, X0, X1  // swap 32-bit pairs
	VPADDD       X1, X0, X0
	VMOVD        X0, AX
	MOVL         AX, ret+24(FP)
	VZEROUPPER
	RET

// func dotInt8RowsAVX2(dst *int32, q, rows *int8, stride, n, nrows int)
//
// The blocked form: integer dot of q against nrows consecutive rows of a
// row-major int8 block (row r at rows + r·stride), accumulating the first
// n elements of each row (n a positive multiple of 16, n ≤ stride) into
// dst[0:nrows]. Row tails beyond n are the caller's. One call scores a
// whole scan block, and the main loop takes rows FOUR at a time sharing
// one sign-extended query chunk: the per-row cost of the q load, the
// horizontal reduction (three VPHADDDs fold four 8-lane accumulators into
// one 4-result vector), and the trailing VZEROUPPER all amortize — the
// per-row kernel above pays each per vector, which at dim=32 costs more
// than the multiplies themselves.
TEXT ·dotInt8RowsAVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ q+8(FP), DX
	MOVQ rows+16(FP), SI
	MOVQ stride+24(FP), R8
	MOVQ n+32(FP), CX
	MOVQ nrows+40(FP), R9

	LEAQ (R8)(R8*2), R13   // 3·stride, for the fourth row pointer
	MOVQ R9, BX
	SHRQ $2, BX            // quad-row count
	JZ   rowtail

row4:
	LEAQ  (SI)(R8*1), R10
	LEAQ  (SI)(R8*2), R11
	LEAQ  (SI)(R13*1), R12
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	XORQ  AX, AX

inner4:
	VPMOVSXBW (DX)(AX*1), Y4    // one q chunk feeds all four rows
	VPMOVSXBW (SI)(AX*1), Y5
	VPMADDWD  Y4, Y5, Y5
	VPADDD    Y5, Y0, Y0
	VPMOVSXBW (R10)(AX*1), Y6
	VPMADDWD  Y4, Y6, Y6
	VPADDD    Y6, Y1, Y1
	VPMOVSXBW (R11)(AX*1), Y7
	VPMADDWD  Y4, Y7, Y7
	VPADDD    Y7, Y2, Y2
	VPMOVSXBW (R12)(AX*1), Y8
	VPMADDWD  Y4, Y8, Y8
	VPADDD    Y8, Y3, Y3
	ADDQ      $16, AX
	CMPQ      AX, CX
	JL        inner4

	// Fold rows 0..3 to [r0, r1, r2, r3]: pairwise VPHADDDs keep each
	// row's partials in one lane position, the extract-add folds the
	// 128-bit halves.
	VPHADDD      Y1, Y0, Y4
	VPHADDD      Y3, Y2, Y5
	VPHADDD      Y5, Y4, Y6
	VEXTRACTI128 $1, Y6, X7
	VPADDD       X7, X6, X6
	VMOVDQU      X6, (DI)
	ADDQ         $16, DI
	LEAQ         (SI)(R8*4), SI
	DECQ         BX
	JNZ          row4

rowtail:
	ANDQ $3, R9
	JZ   done

row1:
	VPXOR Y0, Y0, Y0
	XORQ  AX, AX

inner1:
	VPMOVSXBW (DX)(AX*1), Y4
	VPMOVSXBW (SI)(AX*1), Y5
	VPMADDWD  Y4, Y5, Y5
	VPADDD    Y5, Y0, Y0
	ADDQ      $16, AX
	CMPQ      AX, CX
	JL        inner1

	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0x4E, X0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0xB1, X0, X1
	VPADDD       X1, X0, X0
	VMOVD        X0, AX
	MOVL         AX, (DI)
	ADDQ         $4, DI
	ADDQ         R8, SI
	DECQ         R9
	JNZ          row1

done:
	VZEROUPPER
	RET
