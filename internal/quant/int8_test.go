package quant

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestQuantizeInt8RoundTripError(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 0x18))
	for _, dim := range []int{1, 7, 32, 64, 129} {
		v := make([]float32, dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		code := make([]int8, dim)
		scale := QuantizeInt8Into(code, v)
		if scale <= 0 {
			t.Fatalf("dim=%d: scale %v", dim, scale)
		}
		for i := range v {
			back := float64(code[i]) * float64(scale)
			if diff := math.Abs(back - float64(v[i])); diff > float64(scale)/2+1e-7 {
				t.Fatalf("dim=%d elem %d: |%v - %v| = %v > scale/2 = %v",
					dim, i, back, v[i], diff, scale/2)
			}
		}
	}
}

func TestQuantizeInt8ZeroAndClamp(t *testing.T) {
	code := make([]int8, 4)
	if scale := QuantizeInt8Into(code, []float32{0, 0, 0, 0}); scale != 0 {
		t.Fatalf("zero vector scale %v", scale)
	}
	for i, c := range code {
		if c != 0 {
			t.Fatalf("zero vector code[%d] = %d", i, c)
		}
	}
	// The extreme components land exactly on ±127.
	scale := QuantizeInt8Into(code, []float32{2, -2, 1, 0})
	if code[0] != 127 || code[1] != -127 {
		t.Fatalf("extremes quantized to %d, %d", code[0], code[1])
	}
	if code[3] != 0 {
		t.Fatalf("zero component quantized to %d", code[3])
	}
	_ = scale
}

func TestDotInt8MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 0x18))
	// Sizes straddle the AVX2 kernel's 16-element stride: below it, exact
	// multiples, and every tail residue class that matters.
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 13, 16, 17, 31, 32, 48, 64, 67, 255, 1024} {
		a := make([]int8, n)
		b := make([]int8, n)
		for i := range a {
			a[i] = int8(rng.IntN(255) - 127)
			b[i] = int8(rng.IntN(255) - 127)
		}
		var want int32
		for i := range a {
			want += int32(a[i]) * int32(b[i])
		}
		if got := DotInt8(a, b); got != want {
			t.Fatalf("n=%d: DotInt8 = %d, want %d", n, got, want)
		}
		// Saturated codes maximize every intermediate the widening path
		// produces; the documented bound keeps even dim=133000 in int32.
		for i := range a {
			a[i], b[i] = -127, 127
		}
		if got, want := DotInt8(a, b), int32(n)*-127*127; got != want {
			t.Fatalf("n=%d saturated: DotInt8 = %d, want %d", n, got, want)
		}
	}
}

// TestScoreRowsInt8MatchesScalar pins the blocked assembly path (when
// present) and the scalar path to identical bits across dims straddling
// the 16-lane stride, row counts straddling the 256-row chunk, and
// arbitrary sub-ranges: integer accumulation is exact, so any divergence
// is a kernel bug, not rounding.
func TestScoreRowsInt8MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 0x19))
	for _, dim := range []int{4, 15, 16, 17, 32, 48, 50} {
		for _, rows := range []int{1, 3, 255, 256, 300} {
			b := NewInt8Block(dim)
			v := make([]float32, dim)
			for r := 0; r < rows; r++ {
				for i := range v {
					v[i] = float32(rng.NormFloat64())
				}
				b.Append(v)
			}
			q := make([]int8, dim)
			for i := range q {
				q[i] = int8(rng.IntN(255) - 127)
			}
			const qScale = 0.0123
			r0 := rng.IntN(rows)
			r1 := r0 + 1 + rng.IntN(rows-r0)
			got := b.ScoreRowsInt8(make([]float32, r1-r0), qScale, q, r0, r1)
			for r := r0; r < r1; r++ {
				var acc int32
				row := b.Row(r)
				for i := range row {
					acc += int32(q[i]) * int32(row[i])
				}
				want := (qScale * b.Scales[r]) * float32(acc)
				if got[r-r0] != want {
					t.Fatalf("dim=%d rows=%d [%d,%d): row %d = %v, want %v",
						dim, rows, r0, r1, r, got[r-r0], want)
				}
			}
		}
	}
}

// TestInt8ScoreApproximatesDot pins the end-to-end accuracy bound of the
// quantized score against the exact float32 inner product: the error of
// q·v is at most (|q|₁·scaleV/2 + |v|₁·scaleQ/2 + dim·scaleQ·scaleV/4),
// the first-order quantization bound. A generous relative check keeps the
// test robust while catching sign, scale and widening bugs outright.
func TestInt8ScoreApproximatesDot(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 0x18))
	const dim = 32
	blk := NewInt8Block(dim)
	vecs := make([][]float32, 50)
	for j := range vecs {
		v := make([]float32, dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		vecs[j] = v
		blk.Append(v)
	}
	q := make([]float32, dim)
	for i := range q {
		q[i] = float32(rng.NormFloat64())
	}
	qCode := make([]int8, dim)
	qScale := QuantizeInt8Into(qCode, q)

	scores := blk.ScoreRowsInt8(make([]float32, blk.Rows()), qScale, qCode, 0, blk.Rows())
	for j, v := range vecs {
		var exact float64
		for i := range q {
			exact += float64(q[i]) * float64(v[i])
		}
		var l1q, l1v float64
		for i := range q {
			l1q += math.Abs(float64(q[i]))
			l1v += math.Abs(float64(v[i]))
		}
		sv := float64(blk.Scales[j])
		bound := l1q*sv/2 + l1v*float64(qScale)/2 + dim*float64(qScale)*sv/4
		if diff := math.Abs(float64(scores[j]) - exact); diff > bound {
			t.Fatalf("row %d: |%v - %v| = %v exceeds quantization bound %v",
				j, scores[j], exact, diff, bound)
		}
	}
}

func TestInt8BlockRowsAndMemory(t *testing.T) {
	blk := NewInt8Block(8)
	if blk.Rows() != 0 {
		t.Fatalf("empty block rows %d", blk.Rows())
	}
	blk.Append(make([]float32, 8))
	blk.Append([]float32{1, 2, 3, 4, 5, 6, 7, 8})
	if blk.Rows() != 2 {
		t.Fatalf("rows %d", blk.Rows())
	}
	if got := blk.Memory(); got != 2*8+2*4 {
		t.Fatalf("memory %d", got)
	}
	row := blk.Row(1)
	if len(row) != 8 || row[7] != 127 {
		t.Fatalf("row 1 = %v", row)
	}
}
