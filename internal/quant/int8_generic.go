//go:build !amd64 || purego

package quant

// useInt8AVX2 is false off amd64 (and under -tags purego): DotInt8 runs
// its unrolled scalar loop, which returns identical bits.
const useInt8AVX2 = false

func dotInt8AVX2(a, b *int8, n int) int32 {
	panic("quant: dotInt8AVX2 without AVX2")
}

func (b *Int8Block) scoreRowsWide(dst []float32, qScale float32, q []int8, r0, r1 int) {
	panic("quant: scoreRowsWide without AVX2")
}
