//go:build amd64 && !purego

package quant

import "repro/internal/mat"

// useInt8AVX2 gates the widening-multiply assembly on CPU capability, not
// on the active float kernel tier: integer accumulation is exact, so the
// implementation can never change a score bit, and pinning -kernels=sse2
// for bit-identity triage must not quietly slow the int8 sidecar down.
var useInt8AVX2 = mat.HasAVX2()

// dotInt8AVX2 returns Σ int32(a[i])*int32(b[i]) over the first n elements;
// n must be a positive multiple of 16 and both arrays at least n long.
//
//go:noescape
func dotInt8AVX2(a, b *int8, n int) int32

// dotInt8RowsAVX2 scores q against nrows rows of stride `stride` starting
// at rows, writing each row's integer dot over its first n elements
// (n a positive multiple of 16, n ≤ stride) to dst[0:nrows].
//
//go:noescape
func dotInt8RowsAVX2(dst *int32, q, rows *int8, stride, n, nrows int)

// scoreRowsWide is the AVX2 body of Int8Block.ScoreRowsInt8: one assembly
// call per chunk of rows, scalar tails and the fixed-order scale
// multiplications in Go. The acc chunk lives on the stack.
func (b *Int8Block) scoreRowsWide(dst []float32, qScale float32, q []int8, r0, r1 int) {
	n := b.Dim &^ 15
	var acc [256]int32
	for base := r0; base < r1; base += len(acc) {
		cnt := r1 - base
		if cnt > len(acc) {
			cnt = len(acc)
		}
		dotInt8RowsAVX2(&acc[0], &q[0], &b.Codes[base*b.Dim], b.Dim, n, cnt)
		for j := 0; j < cnt; j++ {
			s := acc[j]
			for i := n; i < b.Dim; i++ {
				s += int32(q[i]) * int32(b.Codes[(base+j)*b.Dim+i])
			}
			dst[base-r0+j] = (qScale * b.Scales[base+j]) * float32(s)
		}
	}
}
