package quant

import (
	"fmt"

	"repro/internal/mat"
)

// PQ is a product quantizer: the D′-dimensional space is split into P
// subspaces of SubDim dimensions each, every subspace quantized
// independently into M centroids (Section V-B). A vector is stored as P
// one-byte-ish codes, and query similarity is computed through per-subspace
// lookup tables (asymmetric distance computation).
type PQ struct {
	// P is the number of subspaces.
	P int
	// M is the number of centroids per subspace codebook.
	M int
	// SubDim is the per-subspace dimensionality m, with D′ = P·m.
	SubDim int
	// Codebooks[p][m] is the m-th centroid of subspace p.
	Codebooks [][]mat.Vec
}

// Code is a PQ code: one centroid index per subspace.
type Code []uint16

// TrainPQ trains a product quantizer on data with p subspaces and m
// centroids per subspace. The vector dimension must be divisible by p and
// there must be at least m training vectors.
func TrainPQ(data []mat.Vec, p, m int, seed uint64) (*PQ, error) {
	if len(data) == 0 {
		return nil, ErrNotEnoughData
	}
	dim := len(data[0])
	if p <= 0 || dim%p != 0 {
		return nil, fmt.Errorf("quant: dim %d not divisible by P=%d", dim, p)
	}
	if len(data) < m {
		return nil, fmt.Errorf("%w: %d vectors for M=%d centroids", ErrNotEnoughData, len(data), m)
	}
	sub := dim / p
	pq := &PQ{P: p, M: m, SubDim: sub, Codebooks: make([][]mat.Vec, p)}
	buf := make([]mat.Vec, len(data))
	for sp := 0; sp < p; sp++ {
		for i, v := range data {
			buf[i] = v[sp*sub : (sp+1)*sub]
		}
		res := KMeans(buf, m, 25, seed+uint64(sp)*1315423911)
		pq.Codebooks[sp] = res.Centroids
	}
	return pq, nil
}

// Dim returns the full vector dimension the quantizer encodes.
func (pq *PQ) Dim() int { return pq.P * pq.SubDim }

// Encode quantizes v into its PQ code.
func (pq *PQ) Encode(v mat.Vec) Code {
	if len(v) != pq.Dim() {
		panic(fmt.Sprintf("quant: Encode dim %d != %d", len(v), pq.Dim()))
	}
	code := make(Code, pq.P)
	for sp := 0; sp < pq.P; sp++ {
		part := v[sp*pq.SubDim : (sp+1)*pq.SubDim]
		code[sp] = uint16(NearestCentroid(pq.Codebooks[sp], part))
	}
	return code
}

// Decode reconstructs the centroid concatenation for a code.
func (pq *PQ) Decode(code Code) mat.Vec {
	out := mat.NewVec(pq.Dim())
	for sp := 0; sp < pq.P; sp++ {
		copy(out[sp*pq.SubDim:(sp+1)*pq.SubDim], pq.Codebooks[sp][code[sp]])
	}
	return out
}

// DotTable precomputes the per-subspace inner products between the query
// partition [q]_p and every centroid — the "distance lookup-table" of
// Algorithm 1. table[p][m] = dot([q]_p, c_{p,m}).
func (pq *PQ) DotTable(q mat.Vec) [][]float32 {
	if len(q) != pq.Dim() {
		panic(fmt.Sprintf("quant: DotTable dim %d != %d", len(q), pq.Dim()))
	}
	table := make([][]float32, pq.P)
	for sp := 0; sp < pq.P; sp++ {
		part := q[sp*pq.SubDim : (sp+1)*pq.SubDim]
		row := make([]float32, len(pq.Codebooks[sp]))
		for mIdx, c := range pq.Codebooks[sp] {
			row[mIdx] = mat.Dot(part, c)
		}
		table[sp] = row
	}
	return table
}

// ApproxDot evaluates the ADC similarity of a coded vector against the
// query whose DotTable is given: Σ_p table[p][code_p]. This is the
// approximate score s([q]_p,[c_a]_p) ≈ s([q]_p, c_m,p) + [q]_p·[r_a]_p of
// Algorithm 1 — the coarse term plus the residual term folded into one
// table lookup per subspace.
func (pq *PQ) ApproxDot(table [][]float32, code Code) float32 {
	var s float32
	for sp, m := range code {
		s += table[sp][m]
	}
	return s
}

// QuantizationError returns the mean squared reconstruction error of the
// quantizer over data; used by tests and calibration.
func (pq *PQ) QuantizationError(data []mat.Vec) float64 {
	if len(data) == 0 {
		return 0
	}
	var sum float64
	for _, v := range data {
		sum += float64(mat.SqDist(v, pq.Decode(pq.Encode(v))))
	}
	return sum / float64(len(data))
}
