package quant

import (
	"fmt"

	"repro/internal/mat"
)

// PQ is a product quantizer: the D′-dimensional space is split into P
// subspaces of SubDim dimensions each, every subspace quantized
// independently into M centroids (Section V-B). A vector is stored as P
// one-byte-ish codes, and query similarity is computed through per-subspace
// lookup tables (asymmetric distance computation).
type PQ struct {
	// P is the number of subspaces.
	P int
	// M is the number of centroids per subspace codebook.
	M int
	// SubDim is the per-subspace dimensionality m, with D′ = P·m.
	SubDim int
	// Codebooks[p][m] is the m-th centroid of subspace p. The rows alias
	// books, the contiguous storage the scoring kernels scan.
	Codebooks [][]mat.Vec

	// books holds every centroid contiguously — subspace p's m-th centroid
	// at offset ((p*k)+m)*SubDim — so table construction is one
	// mat.ScoreRows pass per subspace instead of per-centroid Dot calls.
	books []float32
	// k is the uniform per-subspace centroid count (len(Codebooks[p])).
	k int
}

// Code is a PQ code: one centroid index per subspace.
type Code []uint16

// TrainPQ trains a product quantizer on data with p subspaces and m
// centroids per subspace. The vector dimension must be divisible by p and
// there must be at least m training vectors.
func TrainPQ(data []mat.Vec, p, m int, seed uint64) (*PQ, error) {
	if len(data) == 0 {
		return nil, ErrNotEnoughData
	}
	dim := len(data[0])
	if p <= 0 || dim%p != 0 {
		return nil, fmt.Errorf("quant: dim %d not divisible by P=%d", dim, p)
	}
	if len(data) < m {
		return nil, fmt.Errorf("%w: %d vectors for M=%d centroids", ErrNotEnoughData, len(data), m)
	}
	sub := dim / p
	pq := &PQ{P: p, M: m, SubDim: sub, Codebooks: make([][]mat.Vec, p)}
	buf := make([]mat.Vec, len(data))
	for sp := 0; sp < p; sp++ {
		for i, v := range data {
			buf[i] = v[sp*sub : (sp+1)*sub]
		}
		res := KMeans(buf, m, 25, seed+uint64(sp)*1315423911)
		pq.Codebooks[sp] = res.Centroids
	}
	pq.flatten()
	return pq, nil
}

// flatten copies the codebooks into one contiguous block and re-points the
// Codebooks rows at it. KMeans yields the same centroid count for every
// subspace (all subspaces train on the same vector count), which gives the
// lookup tables their uniform row stride.
func (pq *PQ) flatten() {
	pq.k = len(pq.Codebooks[0])
	for sp, book := range pq.Codebooks {
		if len(book) != pq.k {
			panic(fmt.Sprintf("quant: ragged codebooks: subspace %d has %d centroids, subspace 0 has %d",
				sp, len(book), pq.k))
		}
	}
	pq.books = make([]float32, pq.P*pq.k*pq.SubDim)
	for sp, book := range pq.Codebooks {
		for m, c := range book {
			off := ((sp * pq.k) + m) * pq.SubDim
			copy(pq.books[off:off+pq.SubDim], c)
			pq.Codebooks[sp][m] = pq.books[off : off+pq.SubDim : off+pq.SubDim]
		}
	}
}

// Dim returns the full vector dimension the quantizer encodes.
func (pq *PQ) Dim() int { return pq.P * pq.SubDim }

// Centroids returns the uniform per-subspace centroid count — the row
// stride of the lookup tables this quantizer builds.
func (pq *PQ) Centroids() int { return pq.k }

// Encode quantizes v into its PQ code.
func (pq *PQ) Encode(v mat.Vec) Code {
	if len(v) != pq.Dim() {
		panic(fmt.Sprintf("quant: Encode dim %d != %d", len(v), pq.Dim()))
	}
	code := make(Code, pq.P)
	pq.EncodeInto(code, v)
	return code
}

// EncodeInto quantizes v into dst, which must have length P; hot ingest
// paths use it to encode straight into packed code storage.
func (pq *PQ) EncodeInto(dst []uint16, v mat.Vec) {
	if len(v) != pq.Dim() {
		panic(fmt.Sprintf("quant: Encode dim %d != %d", len(v), pq.Dim()))
	}
	if len(dst) != pq.P {
		panic(fmt.Sprintf("quant: EncodeInto dst length %d != P=%d", len(dst), pq.P))
	}
	for sp := 0; sp < pq.P; sp++ {
		part := v[sp*pq.SubDim : (sp+1)*pq.SubDim]
		dst[sp] = uint16(NearestCentroid(pq.Codebooks[sp], part))
	}
}

// Decode reconstructs the centroid concatenation for a code.
func (pq *PQ) Decode(code Code) mat.Vec {
	out := mat.NewVec(pq.Dim())
	for sp := 0; sp < pq.P; sp++ {
		copy(out[sp*pq.SubDim:(sp+1)*pq.SubDim], pq.Codebooks[sp][code[sp]])
	}
	return out
}

// Table is the flattened ADC lookup table for one query: a single
// contiguous slice with row stride K, where Vals[sp*K+m] is the inner
// product of query partition sp with centroid m of subspace sp. One flat
// slice replaces the former [][]float32 so a scan is P strided loads with
// no pointer chasing, and the backing storage can come from the scratch
// pool.
type Table struct {
	// K is the per-subspace row stride (the centroid count).
	K int
	// Vals holds the P*K products.
	Vals []float32
}

// Row returns subspace sp's centroid products, aliasing the table storage.
func (t Table) Row(sp int) []float32 { return t.Vals[sp*t.K : (sp+1)*t.K] }

// DotTable precomputes the per-subspace inner products between the query
// partition [q]_p and every centroid — the "distance lookup-table" of
// Algorithm 1. Allocation-free callers pass pooled storage to DotTableInto
// instead.
func (pq *PQ) DotTable(q mat.Vec) Table {
	return pq.DotTableInto(make([]float32, pq.TableLen()), q)
}

// TableLen returns the backing-slice length DotTableInto requires (P*K).
func (pq *PQ) TableLen() int { return pq.P * pq.k }

// DotTableInto fills vals (length TableLen) with the ADC lookup table for q
// and returns it wrapped as a Table. Each subspace row is one ScoreRows
// pass over the contiguous codebook block.
func (pq *PQ) DotTableInto(vals []float32, q mat.Vec) Table {
	if len(q) != pq.Dim() {
		panic(fmt.Sprintf("quant: DotTable dim %d != %d", len(q), pq.Dim()))
	}
	if len(vals) != pq.TableLen() {
		panic(fmt.Sprintf("quant: DotTableInto storage %d != %d", len(vals), pq.TableLen()))
	}
	stride := pq.k * pq.SubDim
	for sp := 0; sp < pq.P; sp++ {
		part := q[sp*pq.SubDim : (sp+1)*pq.SubDim]
		mat.ScoreRows(vals[sp*pq.k:(sp+1)*pq.k], part, pq.books[sp*stride:(sp+1)*stride], pq.SubDim)
	}
	return Table{K: pq.k, Vals: vals}
}

// ApproxDot evaluates the ADC similarity of a coded vector against the
// query whose DotTable is given: Σ_p table[p][code_p]. This is the
// approximate score s([q]_p,[c_a]_p) ≈ s([q]_p, c_m,p) + [q]_p·[r_a]_p of
// Algorithm 1 — the coarse term plus the residual term folded into one
// table lookup per subspace.
func (pq *PQ) ApproxDot(table Table, code Code) float32 {
	return approxDot(table, code)
}

// ApproxDotPacked is ApproxDot over one row of packed code storage (a
// length-P []uint16 window).
func (pq *PQ) ApproxDotPacked(table Table, packed []uint16) float32 {
	return approxDot(table, packed)
}

func approxDot(table Table, code []uint16) float32 {
	var s float32
	for sp, m := range code {
		s += table.Vals[sp*table.K+int(m)]
	}
	return s
}

// ApproxDotBatch scores every packed code row against the table in one
// pass: dst[i] = bias + ApproxDot of row i, where packed holds rows of P
// codes back to back. The bias folds in a shared term (the IVF coarse
// similarity of the list being scanned). Results are bit-identical to
// per-row ApproxDot followed by the bias addition.
func (pq *PQ) ApproxDotBatch(dst []float32, table Table, packed []uint16, bias float32) []float32 {
	p := pq.P
	if len(packed)%p != 0 {
		panic(fmt.Sprintf("quant: ApproxDotBatch packed length %d not a multiple of P=%d", len(packed), p))
	}
	n := len(packed) / p
	if dst == nil {
		dst = make([]float32, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		var s float32
		row := packed[i*p : (i+1)*p : (i+1)*p]
		base := 0
		for _, m := range row {
			s += table.Vals[base+int(m)]
			base += table.K
		}
		dst[i] = bias + s
	}
	return dst
}

// QuantizationError returns the mean squared reconstruction error of the
// quantizer over data; used by tests and calibration.
func (pq *PQ) QuantizationError(data []mat.Vec) float64 {
	if len(data) == 0 {
		return 0
	}
	var sum float64
	for _, v := range data {
		sum += float64(mat.SqDist(v, pq.Decode(pq.Encode(v))))
	}
	return sum / float64(len(data))
}
