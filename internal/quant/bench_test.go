package quant

import (
	"testing"

	"repro/internal/mat"
)

// Microbenchmarks for the PQ table build and scan. Run with
//
//	go test -bench . -run '^$' -benchmem ./internal/quant/
//
// DotTableInto and ApproxDotBatch must report zero allocs/op: they are the
// per-query hot path of the IMI and IVF-PQ list scans.

func benchPQ(b *testing.B, n, dim, p, m int) (*PQ, []mat.Vec) {
	b.Helper()
	data := make([]mat.Vec, n)
	for i := range data {
		data[i] = mat.UnitGaussianVec(dim, uint64(2000+i))
	}
	pq, err := TrainPQ(data, p, m, 7)
	if err != nil {
		b.Fatal(err)
	}
	return pq, data
}

func BenchmarkDotTableInto(b *testing.B) {
	pq, _ := benchPQ(b, 256, 32, 4, 64)
	q := mat.UnitGaussianVec(32, 5)
	buf := make([]float32, pq.TableLen())
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pq.DotTableInto(buf, q)
	}
}

func BenchmarkDotTableAlloc(b *testing.B) {
	pq, _ := benchPQ(b, 256, 32, 4, 64)
	q := mat.UnitGaussianVec(32, 5)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pq.DotTable(q)
	}
}

func BenchmarkApproxDotBatch1k(b *testing.B) {
	pq, data := benchPQ(b, 256, 32, 4, 64)
	q := mat.UnitGaussianVec(32, 6)
	table := pq.DotTable(q)
	const rows = 1024
	packed := make([]uint16, 0, rows*pq.P)
	for i := 0; i < rows; i++ {
		packed = append(packed, pq.Encode(data[i%len(data)])...)
	}
	dst := make([]float32, rows)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pq.ApproxDotBatch(dst, table, packed, 0.5)
	}
}

func BenchmarkPQEncode(b *testing.B) {
	pq, data := benchPQ(b, 256, 32, 4, 64)
	dst := make([]uint16, pq.P)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pq.EncodeInto(dst, data[i%len(data)])
	}
}
