package quant

import (
	"fmt"
	"math"
)

// Symmetric int8 quantization for the stage-1 scoring path.
//
// Each vector is quantized independently with a per-vector scale:
// scale = maxabs/127, code[i] = round(v[i]/scale) ∈ [-127, 127]. An inner
// product then reconstructs as
//
//	Dot(a, b) ≈ (a.Scale * b.Scale) * Σ int32(a.Code[i])*int32(b.Code[i])
//
// The widening-multiply accumulation is EXACT integer arithmetic (the sum
// of dim products bounded by 127² fits int32 for dim ≤ 133000), so —
// unlike the float32 kernels — the reduction needs no lane-order
// contract: any association gives the same bits, on every architecture.
// All approximation error lives in quantization itself, which is why the
// int8 path is recall-gated through the planner ladder rather than
// bit-identical: scans shortlist with int8 scores, then re-score the
// shortlist exactly (see ann/flat). Per element the error is at most
// scale/2, i.e. relative to the vector's largest component, 1/254.

// Int8Scale returns the symmetric quantization scale for v: maxabs/127,
// or 0 for an all-zero (or empty) vector. Non-finite components make the
// scale non-finite; callers quantize projected embeddings, which are
// always finite.
func Int8Scale(v []float32) float32 {
	var maxAbs float32
	for _, x := range v {
		if x < 0 {
			x = -x
		}
		if x > maxAbs {
			maxAbs = x
		}
	}
	return maxAbs / 127
}

// QuantizeInt8Into writes round(v[i]/scale) clamped to [-127, 127] into
// dst (len(v) entries) and returns the scale. A zero scale (all-zero
// vector) yields all-zero codes. Rounding goes through float64
// math.Round, which is exact and identical on every platform — the codes
// are part of the deterministic query path.
func QuantizeInt8Into(dst []int8, v []float32) (scale float32) {
	if len(dst) < len(v) {
		panic(fmt.Sprintf("quant: QuantizeInt8Into dst %d for %d values", len(dst), len(v)))
	}
	scale = Int8Scale(v)
	if scale == 0 {
		for i := range v {
			dst[i] = 0
		}
		return 0
	}
	inv := 1 / float64(scale)
	for i, x := range v {
		r := math.Round(float64(x) * inv)
		if r > 127 {
			r = 127
		} else if r < -127 {
			r = -127
		}
		dst[i] = int8(r)
	}
	return scale
}

// DotInt8 is the widening-multiply kernel: Σ int32(a[i])*int32(b[i]) over
// len(a) (callers guarantee len(b) >= len(a)). On amd64 with AVX2 the
// multiple-of-16 prefix runs through the VPMADDWD assembly
// (dotint8_amd64.s); everywhere else — and for the tail — four
// independent int32 accumulators let the compiler keep the loop in
// registers. Integer addition is associative, so every path returns
// identical bits and, unlike the float32 kernels, no ordering contract
// constrains the implementation.
func DotInt8(a, b []int8) int32 {
	i := 0
	var s int32
	if useInt8AVX2 {
		if n := len(a) &^ 15; n > 0 {
			s = dotInt8AVX2(&a[0], &b[0], n)
			i = n
		}
	}
	var l0, l1, l2, l3 int32
	for ; i+4 <= len(a); i += 4 {
		x := a[i : i+4 : i+4]
		y := b[i : i+4 : i+4]
		l0 += int32(x[0]) * int32(y[0])
		l1 += int32(x[1]) * int32(y[1])
		l2 += int32(x[2]) * int32(y[2])
		l3 += int32(x[3]) * int32(y[3])
	}
	s += l0 + l1 + l2 + l3
	for ; i < len(a); i++ {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}

// Int8Block is a row-major block of int8-quantized vectors with their
// per-vector scales — the stage-1 scan sidecar kept by the flat and
// IVF-PQ indexes. It costs dim+4 bytes per vector against the 4·dim of
// the float32 rows it shadows.
type Int8Block struct {
	Dim    int
	Codes  []int8    // row r at Codes[r*Dim : (r+1)*Dim]
	Scales []float32 // Scales[r] is row r's quantization scale
}

// NewInt8Block returns an empty block for dim-dimensional vectors.
func NewInt8Block(dim int) *Int8Block {
	if dim <= 0 {
		panic(fmt.Sprintf("quant: NewInt8Block dim %d", dim))
	}
	return &Int8Block{Dim: dim}
}

// Append quantizes v (length Dim) and appends it as the next row.
func (b *Int8Block) Append(v []float32) {
	if len(v) != b.Dim {
		panic(fmt.Sprintf("quant: Int8Block.Append vector length %d != dim %d", len(v), b.Dim))
	}
	n := len(b.Codes)
	b.Codes = append(b.Codes, make([]int8, b.Dim)...)
	b.Scales = append(b.Scales, QuantizeInt8Into(b.Codes[n:n+b.Dim], v))
}

// Rows reports the number of quantized vectors in the block.
func (b *Int8Block) Rows() int { return len(b.Scales) }

// Row returns row r's codes.
func (b *Int8Block) Row(r int) []int8 { return b.Codes[r*b.Dim : (r+1)*b.Dim] }

// Memory reports the block's approximate footprint in bytes.
func (b *Int8Block) Memory() int { return len(b.Codes) + 4*len(b.Scales) }

// ScoreRowsInt8 scores an int8-quantized query against rows [r0, r1) of
// the block, writing approximate inner products into dst[0 : r1-r0]:
// dst[j] = (qScale * Scales[r0+j]) * Σ q[i]*Row(r0+j)[i]. It returns dst
// truncated to the row count. The integer accumulation is exact and the
// two float32 multiplications are in fixed order, so scores are
// deterministic on every architecture; they differ from exact float32
// dots only by quantization error.
func (b *Int8Block) ScoreRowsInt8(dst []float32, qScale float32, q []int8, r0, r1 int) []float32 {
	if len(q) != b.Dim {
		panic(fmt.Sprintf("quant: ScoreRowsInt8 query length %d != dim %d", len(q), b.Dim))
	}
	dst = dst[:r1-r0]
	if useInt8AVX2 && b.Dim >= 16 && r1 > r0 {
		// Blocked assembly: one call scores up to 256 rows, which is what
		// makes the int8 sweep beat the float kernels instead of losing
		// to per-call overhead (exact integer math — same bits as below).
		b.scoreRowsWide(dst, qScale, q, r0, r1)
		return dst
	}
	for r := r0; r < r1; r++ {
		acc := DotInt8(q, b.Codes[r*b.Dim:(r+1)*b.Dim])
		dst[r-r0] = (qScale * b.Scales[r]) * float32(acc)
	}
	return dst
}
