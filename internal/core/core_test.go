package core

import (
	"testing"

	"repro/internal/datasets"
	"repro/internal/keyframe"
	"repro/internal/query"
	"repro/internal/vectordb"
)

var dsCfg = datasets.Config{Seed: 7, FPS: 1, Scale: 0.12}

// buildSystem ingests a dataset into a fresh system.
func buildSystem(t *testing.T, ds *datasets.Dataset, cfg Config) *System {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Videos {
		if err := s.Ingest(&ds.Videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPatchIDRoundTrip(t *testing.T) {
	cases := [][3]int{{0, 0, 0}, {3, 1234, 99}, {14, 250_000_000, 4095}}
	for _, c := range cases {
		id := PackPatchID(c[0], c[1], c[2])
		v, f, p := UnpackPatchID(id)
		if v != c[0] || f != c[1] || p != c[2] {
			t.Fatalf("roundtrip %v -> %d %d %d", c, v, f, p)
		}
	}
}

func TestIngestPopulatesStores(t *testing.T) {
	ds := datasets.Bellevue(dsCfg)
	s := buildSystem(t, ds, Config{Seed: 1})
	st := s.Stats()
	if st.Videos != 1 || st.Frames == 0 || st.Keyframes == 0 || st.Tokens == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Keyframes >= st.Frames {
		t.Fatalf("keyframes (%d) must compress frames (%d)", st.Keyframes, st.Frames)
	}
	if s.Collection().Len() != st.Tokens {
		t.Fatalf("collection %d != tokens %d", s.Collection().Len(), st.Tokens)
	}
	if s.Collection().IndexKind() != vectordb.IndexIMI {
		t.Fatalf("index kind = %q", s.Collection().IndexKind())
	}
	if st.Processing <= 0 || st.Indexing <= 0 {
		t.Fatalf("timings = %+v", st)
	}
}

func TestQuerySimpleRetrievesRelevantObjects(t *testing.T) {
	ds := datasets.Bellevue(dsCfg)
	s := buildSystem(t, ds, Config{Seed: 1})
	res, err := s.Query("A bus driving on the road.", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) == 0 {
		t.Fatal("no results")
	}
	// The top results must actually be buses: check against ground truth
	// scene descriptions.
	hits := 0
	checked := 0
	for _, o := range res.Objects {
		if checked == 5 {
			break
		}
		f, ok := s.Keyframe(o.VideoID, o.FrameIdx)
		if !ok {
			t.Fatalf("result frame %d/%d not retained", o.VideoID, o.FrameIdx)
		}
		checked++
		for i := range f.Objects {
			if f.Objects[i].Class == "bus" && f.Objects[i].Box.IoU(o.Box) > 0.5 {
				hits++
				break
			}
		}
	}
	if hits < 3 {
		t.Fatalf("only %d/%d top results are buses", hits, checked)
	}
	if res.FastSearch <= 0 || res.Rerank <= 0 {
		t.Fatalf("timings: %+v", res)
	}
}

func TestQueryComplexRelationBenefitsFromRerank(t *testing.T) {
	ds := datasets.Bellevue(dsCfg)
	s := buildSystem(t, ds, Config{Seed: 1})
	const q = "A red car side by side with another car, both positioned in the center of the road."
	gt := datasets.GroundTruth(ds, termsOf(q))
	if len(gt) == 0 {
		t.Skip("no ground truth at this scale")
	}
	withRerank, err := s.Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := s.Query(q, QueryOptions{DisableRerank: true})
	if err != nil {
		t.Fatal(err)
	}
	// Count how many of the top-5 results satisfy the full relational
	// query in ground truth.
	count := func(objs []ResultObject) int {
		n := 0
		for i, o := range objs {
			if i == 5 {
				break
			}
			f, ok := s.Keyframe(o.VideoID, o.FrameIdx)
			if !ok {
				continue
			}
			for oi := range f.Objects {
				if f.MatchesTermsRelational(oi, termsOf(q)) && f.Objects[oi].Box.IoU(o.Box) > 0.5 {
					n++
					break
				}
			}
		}
		return n
	}
	if count(withRerank.Objects) < count(without.Objects) {
		t.Fatalf("rerank (%d correct) must not lose to fast-only (%d) on relation queries",
			count(withRerank.Objects), count(without.Objects))
	}
}

func termsOf(q string) []string {
	p := query.Parse(q)
	out := make([]string, 0, len(p.Terms))
	for _, t := range p.Terms {
		out = append(out, t.Name)
	}
	return out
}

func TestQueryUnknownTermsErrors(t *testing.T) {
	ds := datasets.Bellevue(datasets.Config{Seed: 7, FPS: 1, Scale: 0.05})
	s := buildSystem(t, ds, Config{Seed: 1})
	if _, err := s.Query("zorgon blarf", QueryOptions{}); err == nil {
		t.Fatal("nonsense query must error")
	}
}

func TestQueryBeforeBuildFallsBackToScan(t *testing.T) {
	ds := datasets.Bellevue(datasets.Config{Seed: 7, FPS: 1, Scale: 0.05})
	s, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Videos {
		if err := s.Ingest(&ds.Videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Query("car", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) == 0 {
		t.Fatal("unindexed query must still answer via exact scan")
	}
}

func TestExhaustiveSlowerSameAnswers(t *testing.T) {
	ds := datasets.Bellevue(dsCfg)
	s := buildSystem(t, ds, Config{Seed: 1})
	fast, err := s.Query("A red car driving in the center of the road.", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := s.Query("A red car driving in the center of the road.", QueryOptions{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fast.Objects) == 0 || len(ex.Objects) == 0 {
		t.Fatal("both modes must answer")
	}
}

func TestKeyframeAblationIndexesMore(t *testing.T) {
	ds := datasets.Bellevue(datasets.Config{Seed: 7, FPS: 1, Scale: 0.06})
	withKF := buildSystem(t, ds, Config{Seed: 1})
	without := buildSystem(t, ds, Config{Seed: 1, Keyframe: keyframe.All{}})
	if without.Stats().Tokens <= withKF.Stats().Tokens {
		t.Fatalf("w/o keyframes must index more tokens: %d vs %d",
			without.Stats().Tokens, withKF.Stats().Tokens)
	}
	if without.Collection().Stats().RawBytes <= withKF.Collection().Stats().RawBytes {
		t.Fatal("w/o keyframes must use more storage")
	}
}

func TestIndexVariants(t *testing.T) {
	ds := datasets.Bellevue(datasets.Config{Seed: 7, FPS: 1, Scale: 0.06})
	for _, kind := range []vectordb.IndexKind{vectordb.IndexFlat, vectordb.IndexIVFPQ, vectordb.IndexHNSW} {
		t.Run(string(kind), func(t *testing.T) {
			s := buildSystem(t, ds, Config{Seed: 1, Index: kind})
			res, err := s.Query("A bus driving on the road.", QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Objects) == 0 {
				t.Fatalf("%s: no results", kind)
			}
		})
	}
}

func TestResultTotalSums(t *testing.T) {
	r := &Result{}
	r.FastSearch = 100
	r.Rerank = 200
	if r.Total() != 300 {
		t.Fatal("Total must sum stages")
	}
}

func TestTopNLimitsFrames(t *testing.T) {
	ds := datasets.Bellevue(dsCfg)
	s := buildSystem(t, ds, Config{Seed: 1})
	res, err := s.Query("car", QueryOptions{TopN: 2})
	if err != nil {
		t.Fatal(err)
	}
	frames := map[[2]int]bool{}
	for _, o := range res.Objects {
		frames[[2]int{o.VideoID, o.FrameIdx}] = true
	}
	if len(frames) > 2 {
		t.Fatalf("TopN=2 but %d frames returned", len(frames))
	}
}
