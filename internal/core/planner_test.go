package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/datasets"
	"repro/internal/vectordb"
)

// plannerKinds is every index family the planner must bound.
var plannerKinds = []vectordb.IndexKind{
	vectordb.IndexFlat,
	vectordb.IndexIMI,
	vectordb.IndexIVFPQ,
	vectordb.IndexHNSW,
}

func plannerSystem(t *testing.T, kind vectordb.IndexKind) (*System, *datasets.Dataset) {
	t.Helper()
	ds := datasets.QVHighlights(datasets.Config{Seed: 17, Scale: 0.05})
	sys, err := New(Config{Seed: 17, Index: kind})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Videos {
		if err := sys.Ingest(&ds.Videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	return sys, ds
}

// TestPlannerMeetsRecallBoundAllKinds is the planner acceptance pin: on
// every index kind, a MinRecall-bounded plan's measured stage-1 recall
// against the exact-search ground truth must meet the bound, and planning
// is deterministic — the same query plans identically twice.
func TestPlannerMeetsRecallBoundAllKinds(t *testing.T) {
	const bound = 0.9
	kinds := plannerKinds
	if testing.Short() {
		kinds = []vectordb.IndexKind{vectordb.IndexFlat, vectordb.IndexIMI}
	}
	for _, kind := range kinds {
		t.Run(string(kind), func(t *testing.T) {
			sys, ds := plannerSystem(t, kind)
			queries := ds.Queries
			if len(queries) > 6 {
				queries = queries[:6]
			}
			for _, q := range queries {
				opts := QueryOptions{MinRecall: bound}
				plan, err := sys.PlanQuery(q.Text, opts)
				if err != nil {
					t.Fatalf("%s: plan: %v", q.ID, err)
				}
				if plan.Kind != PlanAdaptive && plan.Kind != PlanAdaptiveExact {
					t.Fatalf("%s: bounded plan has kind %q", q.ID, plan.Kind)
				}
				if plan.PredictedRecall < bound {
					t.Fatalf("%s: plan predicts %v below the %v bound: %s",
						q.ID, plan.PredictedRecall, bound, plan)
				}
				rec, err := sys.StageRecall(q.Text, plan)
				if err != nil {
					t.Fatalf("%s: measuring recall: %v", q.ID, err)
				}
				if rec < bound {
					t.Errorf("%s: measured recall %v below bound %v under plan %s",
						q.ID, rec, bound, plan)
				}
				again, err := sys.PlanQuery(q.Text, opts)
				if err != nil {
					t.Fatal(err)
				}
				// The validation loop may tighten the margin between calls;
				// the execution fields are what determinism pins.
				if again.Key() != plan.Key() {
					t.Errorf("%s: planning is not deterministic: %s vs %s", q.ID, plan, again)
				}
			}
			// A bound of exactly 1 must escalate to exact search on
			// approximate indexes (recall 1 by construction).
			plan, err := sys.PlanQuery(queries[0].Text, QueryOptions{MinRecall: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !plan.Exact {
				t.Fatalf("MinRecall=1 must plan exact search, got %s", plan)
			}
		})
	}
}

// TestDefaultPlanMatchesFixedKnobs pins the no-bound default: PlanQuery
// without a bound or a pin resolves to the fixed plan — the exact knobs
// every query ran with before plans existed — and executing it answers
// byte-identically to Query.
func TestDefaultPlanMatchesFixedKnobs(t *testing.T) {
	sys, ds := plannerSystem(t, vectordb.IndexIMI)
	for _, opts := range []QueryOptions{
		{},
		{FastK: 40, TopN: 5},
		{DisableRerank: true},
		{Exhaustive: true, RerankFrames: 12},
	} {
		text := ds.Queries[0].Text
		plan, err := sys.PlanQuery(text, opts)
		if err != nil {
			t.Fatal(err)
		}
		if want := sys.cfg.FixedPlan(opts); !reflect.DeepEqual(plan, want) {
			t.Fatalf("default plan %+v != fixed plan %+v", plan, want)
		}
		want, err := sys.Query(text, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sys.QueryPlanned(context.Background(), text, plan, opts.Workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Objects, want.Objects) {
			t.Fatalf("opts %+v: plan execution diverges from Query", opts)
		}
	}
}

// TestPlannerCalibration: PlanStats triggers calibration and exports a
// sane digest — a bounded sample, term counts covering the corpus
// vocabulary, and rungs with recalls in [0, 1] at increasing effort.
func TestPlannerCalibration(t *testing.T) {
	sys, _ := plannerSystem(t, vectordb.IndexIVFPQ)
	st := sys.PlanStats()
	if !st.Calibrated {
		t.Fatal("PlanStats on a built system must calibrate")
	}
	if st.Entities == 0 || st.Dim == 0 || len(st.Sample) == 0 || len(st.Terms) == 0 {
		t.Fatalf("digest missing data: %+v", st)
	}
	if len(st.Sample)%st.Dim != 0 {
		t.Fatalf("sample length %d not a multiple of dim %d", len(st.Sample), st.Dim)
	}
	if len(st.Rungs) == 0 {
		t.Fatal("no calibrated rungs")
	}
	for i, r := range st.Rungs {
		if r.MinRecall < 0 || r.MinRecall > 1 || r.MeanRecall < r.MinRecall {
			t.Fatalf("rung %d malformed: %+v", i, r)
		}
		// Effort must ascend: NProbe never decreases, and at equal NProbe
		// the only legal pairing is the cheaper int8 rung directly before
		// its float sibling.
		if i > 0 {
			prev := st.Rungs[i-1]
			if r.NProbe < prev.NProbe ||
				(r.NProbe == prev.NProbe && !(prev.Int8 && !r.Int8)) {
				t.Fatalf("rungs not at increasing effort: %+v", st.Rungs)
			}
		}
	}
}

// TestValidateMinRecall pins the exported bound validation.
func TestValidateMinRecall(t *testing.T) {
	for _, ok := range []float64{0, 0.01, 0.5, 1} {
		if err := ValidateMinRecall(ok); err != nil {
			t.Errorf("ValidateMinRecall(%v) = %v, want nil", ok, err)
		}
	}
	bad := []float64{-0.1, 1.0000001, 42}
	for _, b := range bad {
		if err := ValidateMinRecall(b); err == nil {
			t.Errorf("ValidateMinRecall(%v) = nil, want error", b)
		}
	}
}

// TestAdaptRerankBudget pins the shrink-only rerank adaptation: never
// above the configured default, never below the answer size (or the
// 8-frame floor), and tracking the matchable-frame ceiling in between.
func TestAdaptRerankBudget(t *testing.T) {
	cases := []struct {
		m, def, topN, want int
	}{
		{0, 64, 10, 10},   // nothing matches: floor at topN
		{0, 64, 2, 8},     // tiny topN: absolute floor of 8
		{5, 64, 2, 9},     // m+4 above the floor
		{100, 64, 10, 64}, // plenty matchable: capped at the default
		{60, 64, 10, 64},  // m+4 just past the default: capped
		{20, 64, 10, 24},  // interior: m+4
	}
	for _, c := range cases {
		if got := AdaptRerankBudget(c.m, c.def, c.topN); got != c.want {
			t.Errorf("AdaptRerankBudget(%d, %d, %d) = %d, want %d", c.m, c.def, c.topN, got, c.want)
		}
	}
}

func hit(patch int64, score float32, video, frame int) ResultObject {
	return ResultObject{VideoID: video, FrameIdx: frame, Score: score, PatchID: patch}
}

// TestMergeHitsEdgeCases covers the stage-1 merge at its boundaries: no
// lists, empty lists, a cut larger than the candidate set, no cut at all,
// and all-ties scores (patch ID must break every tie).
func TestMergeHitsEdgeCases(t *testing.T) {
	if got := MergeHits(nil, 10); len(got) != 0 {
		t.Fatalf("merge of no lists = %v", got)
	}
	if got := MergeHits([][]ResultObject{{}, nil, {}}, 10); len(got) != 0 {
		t.Fatalf("merge of empty lists = %v", got)
	}
	a := []ResultObject{hit(1, 0.9, 0, 0), hit(7, 0.5, 0, 3)}
	b := []ResultObject{hit(4, 0.7, 1, 0)}
	if got := MergeHits([][]ResultObject{a, b}, 100); len(got) != 3 {
		t.Fatalf("cut larger than candidates must keep all: %v", got)
	}
	if got := MergeHits([][]ResultObject{a, b}, 0); len(got) != 3 {
		t.Fatalf("fastK=0 must not truncate: %v", got)
	}
	// All-ties: order must be patch ID ascending, regardless of list order.
	ties := [][]ResultObject{
		{hit(9, 0.5, 0, 0), hit(2, 0.5, 0, 1)},
		{hit(5, 0.5, 1, 0)},
	}
	got := MergeHits(ties, 2)
	if len(got) != 2 || got[0].PatchID != 2 || got[1].PatchID != 5 {
		t.Fatalf("tied scores must cut by ascending patch ID: %v", got)
	}
}

// TestSelectForRerankEdgeCases covers the stage-2 budget selection: empty
// input, a budget covering everything (input returned as-is), a disabled
// budget, and single-frame videos — which can never be "temporally close"
// to one another, so diversity deferral must not drop them.
func TestSelectForRerankEdgeCases(t *testing.T) {
	if got := SelectForRerank(nil, 4); len(got) != 0 {
		t.Fatalf("empty refs select %v", got)
	}
	refs := []FrameRef{{VideoID: 0, FrameIdx: 0}, {VideoID: 0, FrameIdx: 1}, {VideoID: 1, FrameIdx: 0}}
	if got := SelectForRerank(refs, 10); !reflect.DeepEqual(got, refs) {
		t.Fatalf("budget above candidate count must keep all in order: %v", got)
	}
	if got := SelectForRerank(refs, 0); !reflect.DeepEqual(got, refs) {
		t.Fatalf("budget 0 disables the cut: %v", got)
	}
	// Ten single-frame videos: all temporally distinct, so the cut is a
	// plain prefix of the budget size.
	var singles []FrameRef
	for v := 0; v < 10; v++ {
		singles = append(singles, FrameRef{VideoID: v, FrameIdx: 0})
	}
	got := SelectForRerank(singles, 6)
	if !reflect.DeepEqual(got, singles[:6]) {
		t.Fatalf("single-frame videos must fill the budget in order: %v", got)
	}
	// Adjacent frames of one video defer to distinct moments first.
	clustered := []FrameRef{
		{VideoID: 0, FrameIdx: 0}, {VideoID: 0, FrameIdx: 1},
		{VideoID: 0, FrameIdx: 40}, {VideoID: 0, FrameIdx: 41},
	}
	got = SelectForRerank(clustered, 2)
	want := []FrameRef{{VideoID: 0, FrameIdx: 0}, {VideoID: 0, FrameIdx: 40}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("diversity selection got %v, want %v", got, want)
	}
}

// TestDedupHitsEdgeCases covers the no-rerank dedup: empty input, a limit
// above the candidate set, exact-duplicate boxes collapsing, and all-ties
// scores preserving canonical order.
func TestDedupHitsEdgeCases(t *testing.T) {
	if got := DedupHits(nil, 5); len(got) != 0 {
		t.Fatalf("dedup of nothing = %v", got)
	}
	boxed := func(patch int64, score float32, frame int, x float64) ResultObject {
		o := hit(patch, score, 0, frame)
		o.Box.X, o.Box.Y, o.Box.W, o.Box.H = x, 0.1, 0.2, 0.2
		return o
	}
	distinct := []ResultObject{boxed(1, 0.9, 0, 0.1), boxed(2, 0.8, 1, 0.1), boxed(3, 0.7, 2, 0.1)}
	if got := DedupHits(distinct, 100); len(got) != 3 {
		t.Fatalf("limit above candidates must keep all: %v", got)
	}
	// The same frame and box twice (different patches) collapses to the
	// first — higher-scored — hit.
	dups := []ResultObject{boxed(1, 0.9, 0, 0.1), boxed(2, 0.8, 0, 0.1), boxed(3, 0.7, 1, 0.5)}
	got := DedupHits(dups, 100)
	if len(got) != 2 || got[0].PatchID != 1 || got[1].PatchID != 3 {
		t.Fatalf("duplicate boxes must collapse to the best hit: %v", got)
	}
	// All-ties input in canonical order stays in order after dedup.
	ties := []ResultObject{boxed(1, 0.5, 0, 0.1), boxed(2, 0.5, 1, 0.1), boxed(3, 0.5, 2, 0.1)}
	got = DedupHits(ties, 2)
	if len(got) != 2 || got[0].PatchID != 1 || got[1].PatchID != 2 {
		t.Fatalf("tied dedup must truncate canonically: %v", got)
	}
}
