package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ResolveWorkers normalises a worker-count knob: zero (and negatives) mean
// "use every core".
func ResolveWorkers(w int) int {
	if w <= 0 {
		return runtime.NumCPU()
	}
	return w
}

// ParallelFor runs fn(i) for every i in [0, n) across at most workers
// goroutines. Iterations are handed out dynamically so uneven per-item cost
// doesn't idle workers. With workers <= 1 (or n <= 1) it degenerates to the
// plain serial loop on the calling goroutine, so the serial path stays the
// literal baseline the determinism tests compare against.
func ParallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
