package core

import (
	"math"
	"testing"

	"repro/internal/ann"
	"repro/internal/datasets"
	"repro/internal/mat"
	"repro/internal/query"
	"repro/internal/vectordb"
)

// The kernel rewrite must not perturb what a query returns: stage 1 must
// reproduce, bit for bit, an oracle scan computed with one mat.Dot per
// stored vector and a fresh top-k heap — no blocking, batching, pooling or
// threshold gating — and the full two-stage Query must answer identically
// under every index kind driven through the same exhaustive scan.

func TestFlatFastSearchBitIdenticalToOracleScan(t *testing.T) {
	ds := datasets.Bellevue(datasets.Config{Seed: 7, FPS: 1, Scale: 0.08})
	s := buildSystem(t, ds, Config{Seed: 7, Index: vectordb.IndexFlat})

	for _, text := range []string{
		"A red car driving in the center of the road.",
		"A person walking on the street.",
		"A truck driving on the road.",
	} {
		fh, err := s.FastSearch(text, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}

		// Oracle: re-derive the projected query vector through the public
		// encode path, score every stored vector with a lone Dot, keep the
		// canonical top-k.
		parsed := query.Parse(text)
		qvec := s.text.FastVec(parsed)
		qproj := s.space.Project(qvec)
		col := s.Collection()
		top := mat.NewTopK(s.cfg.FastK)
		for _, id := range colIDs(col) {
			v, err := col.Vector(id)
			if err != nil {
				t.Fatal(err)
			}
			top.Push(id, mat.Dot(qproj, v))
		}
		want := top.Sorted()

		if len(fh.Objects) != len(want) {
			t.Fatalf("%q: %d hits, oracle %d", text, len(fh.Objects), len(want))
		}
		for i, o := range fh.Objects {
			if o.PatchID != want[i].ID ||
				math.Float32bits(o.Score) != math.Float32bits(want[i].Score) {
				t.Fatalf("%q hit %d: got (%d, %x), oracle (%d, %x)", text, i,
					o.PatchID, math.Float32bits(o.Score),
					want[i].ID, math.Float32bits(want[i].Score))
			}
		}
	}
}

// colIDs lists every stored vector id via the index's deterministic
// exhaustive search (scores unused).
func colIDs(col *vectordb.Collection) []int64 {
	n := col.Len()
	q := make(mat.Vec, col.Schema().Dim)
	q[0] = 1
	hits, err := col.Search(q, n, ann.Params{Exhaustive: true})
	if err != nil {
		panic(err)
	}
	ids := make([]int64, 0, n)
	for _, h := range hits {
		ids = append(ids, h.ID)
	}
	return ids
}

// TestQueryIdenticalAcrossIndexKindsExhaustive pins the full two-stage
// answer: with exhaustive search, every index kind reduces to the same
// exact scan, so Query must return byte-identical objects whatever the
// backend — the cross-consumer guarantee of the shared kernel layer.
func TestQueryIdenticalAcrossIndexKindsExhaustive(t *testing.T) {
	ds := datasets.Bellevue(datasets.Config{Seed: 7, FPS: 1, Scale: 0.08})
	text := "A red car driving in the center of the road."
	var baseline *Result
	for _, kind := range []vectordb.IndexKind{vectordb.IndexFlat, vectordb.IndexIMI, vectordb.IndexIVFPQ, vectordb.IndexHNSW} {
		s := buildSystem(t, ds, Config{Seed: 7, Index: kind})
		res, err := s.Query(text, QueryOptions{Exhaustive: true})
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = res
			continue
		}
		if len(res.Objects) != len(baseline.Objects) {
			t.Fatalf("%s: %d objects, flat %d", kind, len(res.Objects), len(baseline.Objects))
		}
		for i, o := range res.Objects {
			b := baseline.Objects[i]
			if o.VideoID != b.VideoID || o.FrameIdx != b.FrameIdx || o.PatchID != b.PatchID ||
				math.Float32bits(o.Score) != math.Float32bits(b.Score) {
				t.Fatalf("%s object %d: %+v != flat %+v", kind, i, o, b)
			}
		}
	}
}
