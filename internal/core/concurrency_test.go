package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/datasets"
	"repro/internal/keyframe"
	"repro/internal/video"
)

// concurrencyQueries is a small mix exercising simple and relational paths.
var concurrencyQueries = []string{
	"A bus driving on the road.",
	"A red car driving in the center of the road.",
	"A person walking on the road.",
	"A red car side by side with another car, both positioned in the center of the road.",
}

// concurrencyWorkload shrinks the dataset and query mix under -short so the
// race-enabled CI run stays fast while still exercising every code path.
func concurrencyWorkload(t *testing.T) (datasets.Config, []string) {
	t.Helper()
	if testing.Short() {
		return datasets.Config{Seed: 7, FPS: 1, Scale: 0.06}, concurrencyQueries[:2]
	}
	return dsCfg, concurrencyQueries
}

func TestPackPatchIDBoundsRoundTrip(t *testing.T) {
	id := PackPatchID(MaxVideoID, MaxFrameIdx, MaxPatch)
	v, f, p := UnpackPatchID(id)
	if v != MaxVideoID || f != MaxFrameIdx || p != MaxPatch {
		t.Fatalf("boundary roundtrip: got %d %d %d", v, f, p)
	}
}

// Regression: out-of-range coordinates used to pack silently, producing a
// join key that aliases another patch's (videoID 2^16 collides into the
// frame field). They must refuse loudly now.
func TestPackPatchIDRangeGuards(t *testing.T) {
	cases := []struct {
		name             string
		video, frame, pt int
	}{
		{"video overflow", MaxVideoID + 1, 0, 0},
		{"frame overflow", 0, MaxFrameIdx + 1, 0},
		{"patch overflow", 0, 0, MaxPatch + 1},
		{"negative video", -1, 0, 0},
		{"negative frame", 0, -1, 0},
		{"negative patch", 0, 0, -1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("PackPatchID(%d, %d, %d) must panic", c.video, c.frame, c.pt)
				}
			}()
			PackPatchID(c.video, c.frame, c.pt)
		})
	}
}

func TestNewRejectsOversizedGrid(t *testing.T) {
	// 128x64 = 8192 patches would overflow the 12-bit packed patch field
	// (and collide with centre-sampled anchor tokens); New must refuse.
	if _, err := New(Config{Seed: 1, GridW: 128, GridH: 64}); err == nil {
		t.Fatal("oversized patch grid must be rejected")
	}
	if _, err := New(Config{Seed: 1, GridW: 64, GridH: 32}); err != nil {
		t.Fatalf("2048-patch grid is the documented maximum: %v", err)
	}
}

func TestIngestRejectsOutOfRangeIDs(t *testing.T) {
	s, err := New(Config{Seed: 1, Keyframe: keyframe.All{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(&video.Video{ID: MaxVideoID + 1}); err == nil {
		t.Fatal("video ID beyond the 16-bit field must be rejected")
	}
	v := &video.Video{ID: 1, Frames: []video.Frame{{VideoID: 1, Index: MaxFrameIdx + 1}}}
	if err := s.Ingest(v); err == nil {
		t.Fatal("frame index beyond the 28-bit field must be rejected")
	}
}

// TestParallelIngestDeterminism asserts that a system ingested with many
// encoding workers is indistinguishable from the serial baseline: same
// counters and byte-identical query answers.
func TestParallelIngestDeterminism(t *testing.T) {
	cfg, queries := concurrencyWorkload(t)
	ds := datasets.Bellevue(cfg)
	serial := buildSystem(t, ds, Config{Seed: 1, Workers: 1})
	parallel := buildSystem(t, ds, Config{Seed: 1, Workers: 8})

	ss, ps := serial.Stats(), parallel.Stats()
	if ss.Tokens != ps.Tokens || ss.Keyframes != ps.Keyframes {
		t.Fatalf("counters diverge: serial %d tokens/%d keyframes, parallel %d/%d",
			ss.Tokens, ss.Keyframes, ps.Tokens, ps.Keyframes)
	}
	for _, q := range queries {
		want, err := serial.Query(q, QueryOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		got, err := parallel.Query(q, QueryOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Objects, got.Objects) {
			t.Fatalf("query %q: parallel-ingest results diverge\nserial:   %+v\nparallel: %+v",
				q, want.Objects, got.Objects)
		}
	}
}

// TestParallelRerankDeterminism asserts the parallel stage-2 rerank returns
// byte-identical results to the serial loop at several fan-out widths.
func TestParallelRerankDeterminism(t *testing.T) {
	cfg, queries := concurrencyWorkload(t)
	ds := datasets.Bellevue(cfg)
	s := buildSystem(t, ds, Config{Seed: 1})
	for _, q := range queries {
		want, err := s.Query(q, QueryOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4, 8} {
			got, err := s.Query(q, QueryOptions{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.Objects, got.Objects) {
				t.Fatalf("query %q: %d-worker rerank diverges from serial\nserial:   %+v\nparallel: %+v",
					q, w, want.Objects, got.Objects)
			}
			if got.CandidateFrames != want.CandidateFrames {
				t.Fatalf("query %q: candidate frames %d != %d", q, got.CandidateFrames, want.CandidateFrames)
			}
		}
	}
}

func TestQueryBatchMatchesSerial(t *testing.T) {
	cfg, queries := concurrencyWorkload(t)
	ds := datasets.Bellevue(cfg)
	s := buildSystem(t, ds, Config{Seed: 1})
	batch, err := s.QueryBatch(queries, QueryOptions{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("batch returned %d results for %d queries", len(batch), len(queries))
	}
	for i, q := range queries {
		want, err := s.Query(q, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Objects, batch[i].Objects) {
			t.Fatalf("batch result %d (%q) diverges from lone query", i, q)
		}
	}
}

func TestQueryBatchPropagatesFirstError(t *testing.T) {
	ds := datasets.Bellevue(datasets.Config{Seed: 7, FPS: 1, Scale: 0.05})
	s := buildSystem(t, ds, Config{Seed: 1})
	_, err := s.QueryBatch([]string{"car", "zorgon blarf", "bus"}, QueryOptions{}, 2)
	if err == nil {
		t.Fatal("batch containing a nonsense query must error")
	}
}

// TestConcurrentQueryDuringIngest runs many Query goroutines while the main
// goroutine keeps ingesting and re-indexing. Run under -race this is the
// thread-safety contract of the concurrent engine: no data races, no
// errors, and queries always see a consistent store.
func TestConcurrentQueryDuringIngest(t *testing.T) {
	scale := 0.1
	rounds := 2
	if testing.Short() {
		scale, rounds = 0.06, 1
	}
	ds := datasets.Bellevue(datasets.Config{Seed: 7, FPS: 1, Scale: scale})
	if len(ds.Videos) == 0 {
		t.Skip("no videos at this scale")
	}
	s, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Seed the store so early queries have something to search.
	if err := s.Ingest(&ds.Videos[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	errCh := make(chan error, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := concurrencyQueries[(g+i)%len(concurrencyQueries)]
				res, err := s.Query(q, QueryOptions{})
				if err != nil {
					errCh <- fmt.Errorf("query %q during ingest: %w", q, err)
					return
				}
				if res == nil {
					errCh <- fmt.Errorf("query %q returned nil result", q)
					return
				}
			}
		}(g)
	}

	// Keep ingesting the remaining videos (re-ingest under shifted IDs to
	// extend the run), rebuilding the index as footage arrives.
	for round := 0; round < rounds; round++ {
		for i := range ds.Videos {
			v := ds.Videos[i] // shallow copy; frames are read-only
			v.ID = round*len(ds.Videos) + i + 100
			if err := s.Ingest(&v); err != nil {
				t.Errorf("ingest during queries: %v", err)
				break
			}
		}
		if err := s.BuildIndex(); err != nil {
			t.Errorf("rebuild during queries: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
