// The planner turns the accuracy-bounded query API (QueryOptions.MinRecall)
// into concrete plans. It never guesses from formulas: selectivity is
// sampled at ingest (per-term posting statistics, a deterministic sketch of
// the stored score distribution) and index effort is calibrated against
// exact-search ground truth — a ladder of NProbe/Ef rungs, each measured on
// probe vectors drawn from the stored sample and from vocabulary-term
// embeddings. Plan choice is then a lookup: the cheapest rung whose
// worst-case calibrated recall clears the bound plus a safety margin, with
// escalation to exact search when nothing qualifies or no calibration data
// exists. A validation loop periodically re-measures a live query's plan
// against exact ground truth and folds the error back into the margin, the
// sample-plan-execute-with-uncertainty loop MIRIS runs for video predicates.
package core

import (
	"context"
	"math"
	"sort"
	"sync"

	"repro/internal/ann"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/vectordb"
	"repro/internal/video"
)

// TermCount is one vocabulary term's posting statistics: how many object
// observations and distinct keyframes of this system's corpus carry it.
type TermCount struct {
	Name    string
	Objects int
	Frames  int
}

// Rung is one calibrated point on the index effort ladder: the recall the
// index delivered at this NProbe (IMI/IVF-PQ) or Ef (HNSW) against the
// exact top-FastK, measured over the probe set. MinRecall is the
// worst-case probe — the value plan selection trusts; MeanRecall is
// reported for observability.
type Rung struct {
	NProbe int
	Ef     int
	// Int8 marks a rung measured over the int8-quantized stage-1 path
	// (flat, IVF-PQ). At equal NProbe the int8 sweep is the cheaper
	// scorer, so its rung sits immediately before its float sibling on
	// the ladder and wins whenever its measured recall clears the bound.
	Int8       bool
	MinRecall  float64
	MeanRecall float64
}

// PlanStats is the codec-friendly planning digest one shard exports: the
// selectivity sample, posting statistics and calibrated effort ladder a
// coordinator combines to plan across shards it cannot see into.
type PlanStats struct {
	// Entities is the shard's indexed vector count.
	Entities int
	// Dim is the sample vector dimensionality (ProjDim).
	Dim int
	// SampleEvery is the sketch stride: each sample vector stands for this
	// many stored vectors, which is the weight per-shard k estimation uses.
	SampleEvery int
	// Sample is the flattened, unit-normalised vector sketch in insertion
	// order (len = Dim * count).
	Sample []float32
	// Terms is the per-term posting statistics, sorted by name.
	Terms []TermCount
	// Rungs is the calibrated effort ladder (empty until calibration).
	Rungs []Rung
	// Calibrated reports whether Rungs is trustworthy; a shard that is
	// empty, unbuilt or never calibrated forces exact planning.
	Calibrated bool
	// Margin is the shard's current validation-adjusted safety margin.
	Margin float64
}

type termStat struct {
	objects int
	frames  int
}

const (
	// plannerSampleCap bounds the vector sketch; on overflow the sketch
	// thins to every second vector and doubles its stride, staying
	// deterministic for equal ingest orders (so replicas agree).
	plannerSampleCap = 512
	// plannerProbeVecs and plannerProbeTerms bound the calibration probe
	// set: evenly-spaced stored vectors plus embeddings of the corpus's
	// most frequent vocabulary terms (text-shaped probes, since live
	// queries are text embeddings, not stored vectors).
	plannerProbeVecs  = 12
	plannerProbeTerms = 8
	// plannerInitMargin is the initial safety margin added to the caller's
	// bound before rung selection; the validation loop adapts it.
	plannerInitMargin = 0.02
	// plannerMaxMargin caps margin growth so one pathological query cannot
	// push every later plan to exact forever.
	plannerMaxMargin = 0.25
)

// planner holds one System's planning state. All fields are guarded by mu;
// ingest-side hooks (observe, noteFrame) are cheap and run on the ingest
// goroutine, calibration runs lazily on the first bounded plan after a
// corpus change.
type planner struct {
	mu          sync.Mutex
	dim         int
	terms       map[string]*termStat
	sample      []float32
	sampleEvery int
	seen        int

	rungs         []Rung
	calibrated    bool
	calibGen      uint64
	calibEntities int

	margin        float64
	planned       int
	validateEvery int
	lastMeasured  float64
}

func newPlanner(cfg Config) *planner {
	return &planner{
		dim:           cfg.ProjDim,
		terms:         make(map[string]*termStat),
		sampleEvery:   1,
		margin:        plannerInitMargin,
		validateEvery: cfg.PlannerValidateEvery,
	}
}

// reset drops all planning state (snapshot restore rebuilds it from the
// restored corpus).
func (p *planner) reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.terms = make(map[string]*termStat)
	p.sample = nil
	p.sampleEvery = 1
	p.seen = 0
	p.rungs = nil
	p.calibrated = false
	p.calibGen = 0
	p.calibEntities = 0
	p.planned = 0
	p.margin = plannerInitMargin
	p.lastMeasured = 0
}

// observe folds one inserted vector into the score-distribution sketch:
// every sampleEvery-th vector is kept (normalised, as stored), and the
// sketch thins deterministically when full.
func (p *planner) observe(v []float32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.seen%p.sampleEvery == 0 {
		w := make([]float32, len(v))
		copy(w, v)
		mat.Normalize(w)
		p.sample = append(p.sample, w...)
		if len(p.sample) >= plannerSampleCap*p.dim {
			p.thinLocked()
		}
	}
	p.seen++
}

// thinLocked halves the sketch, keeping every second vector. Kept vectors
// sit on the doubled stride's lattice, so future picks stay consistent.
func (p *planner) thinLocked() {
	n := len(p.sample) / p.dim
	kept := 0
	for i := 0; i < n; i += 2 {
		copy(p.sample[kept*p.dim:(kept+1)*p.dim], p.sample[i*p.dim:(i+1)*p.dim])
		kept++
	}
	p.sample = p.sample[:kept*p.dim]
	p.sampleEvery *= 2
}

// noteFrame folds one ingested keyframe into the per-term posting
// statistics: each term of the frame's objects (class, attributes,
// behaviours) and scene context counts one frame, and object-level terms
// additionally count their occurrences.
func (p *planner) noteFrame(f *video.Frame) {
	counts := make(map[string]int)
	for i := range f.Objects {
		o := &f.Objects[i]
		counts[o.Class]++
		for _, a := range o.Attrs {
			counts[a]++
		}
		for _, b := range o.Behaviors {
			counts[b]++
		}
	}
	for _, c := range f.Context {
		if _, ok := counts[c]; !ok {
			counts[c] = 0
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for t, n := range counts {
		st := p.terms[t]
		if st == nil {
			st = &termStat{}
			p.terms[t] = st
		}
		st.frames++
		st.objects += n
	}
}

// probeVectorsLocked draws up to plannerProbeVecs evenly spaced vectors
// from the sketch.
func (p *planner) probeVectorsLocked() [][]float32 {
	n := len(p.sample) / p.dim
	if n == 0 {
		return nil
	}
	count := plannerProbeVecs
	if count > n {
		count = n
	}
	out := make([][]float32, 0, count)
	for i := 0; i < count; i++ {
		idx := i * n / count
		v := make([]float32, p.dim)
		copy(v, p.sample[idx*p.dim:(idx+1)*p.dim])
		out = append(out, v)
	}
	return out
}

// topTermsLocked returns the n most frequent term names (by distinct
// frames, ties by name) — the text-probe set for calibration.
func (p *planner) topTermsLocked(n int) []string {
	type tc struct {
		name   string
		frames int
	}
	all := make([]tc, 0, len(p.terms))
	for name, st := range p.terms {
		all = append(all, tc{name, st.frames})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].frames != all[j].frames {
			return all[i].frames > all[j].frames
		}
		return all[i].name < all[j].name
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].name
	}
	return out
}

// ensureCalibratedLocked brings the effort ladder up to date with the
// corpus. Calibration is lazy — it runs on the first bounded plan (or
// PlanStats export) after a mutation — and tolerant of small growth: once
// calibrated, the ladder is reused until the corpus grows by more than a
// quarter, so a bounded query stream concurrent with trickle ingest does
// not recalibrate per video.
func (p *planner) ensureCalibratedLocked(s *System) {
	gen := s.IngestGen()
	if gen == p.calibGen {
		return
	}
	ent := s.Entities()
	if p.calibrated && s.Built() && ent >= p.calibEntities && ent <= p.calibEntities+p.calibEntities/4 {
		p.calibGen = gen
		return
	}
	p.calibrateLocked(s, gen, ent)
}

// calibrateLocked measures the effort ladder against exact-search ground
// truth: for each probe, the exact top-FastK is computed once by
// exhaustive scan, then each rung's approximate search is scored against
// it. The ladder stops early once worst-case recall saturates.
func (p *planner) calibrateLocked(s *System, gen uint64, ent int) {
	p.calibGen = gen
	p.calibEntities = ent
	p.calibrated = false
	p.rungs = nil
	if ent == 0 || !s.Built() {
		return
	}
	probes := p.probeVectorsLocked()
	probes = append(probes, s.probeTextVectors(p.topTermsLocked(plannerProbeTerms))...)
	if s.cfg.Index == vectordb.IndexFlat && len(probes) == 0 {
		// Flat float search is exact at every setting; with no probes to
		// measure the int8 rung against, the ladder is the exact rung alone.
		p.rungs = []Rung{{MinRecall: 1, MeanRecall: 1}}
		p.calibrated = true
		return
	}
	if len(probes) == 0 {
		return
	}
	k := s.cfg.FastK
	exact := make([]map[int64]bool, len(probes))
	for i, q := range probes {
		hits, err := s.searchVectors(q, k, ann.Params{Exhaustive: true})
		if err != nil {
			return
		}
		ids := make(map[int64]bool, len(hits))
		for _, h := range hits {
			ids[h.ID] = true
		}
		exact[i] = ids
	}
	var ladder []Rung
	switch s.cfg.Index {
	case vectordb.IndexFlat:
		// The float flat scan is exact at every setting — only the int8
		// stage-1 path needs measuring. The exact terminal rung is appended
		// unmeasured below.
		ladder = []Rung{{Int8: true}}
	case vectordb.IndexHNSW:
		for _, ef := range []int{16, 32, 64, 128, 256} {
			ladder = append(ladder, Rung{Ef: ef})
		}
	default:
		maxProbe := s.cfg.IndexOptions.M
		int8Capable := s.cfg.Index == vectordb.IndexIVFPQ
		for _, np := range []int{1, 2, 4, 8, 16, 32, 64} {
			if maxProbe > 0 && np > maxProbe {
				break
			}
			if int8Capable {
				// The int8 sidecar sweep is the cheaper stage-1 scorer at
				// the same probe width, so its rung sits first and wins ties.
				ladder = append(ladder, Rung{NProbe: np, Int8: true})
			}
			ladder = append(ladder, Rung{NProbe: np})
		}
	}
	for _, rung := range ladder {
		minR, sum := 1.0, 0.0
		for i, q := range probes {
			hits, err := s.searchVectors(q, k, ann.Params{NProbe: rung.NProbe, Ef: rung.Ef, Int8: rung.Int8})
			if err != nil {
				return
			}
			overlap := 0
			for _, h := range hits {
				if exact[i][h.ID] {
					overlap++
				}
			}
			r := 1.0
			if len(exact[i]) > 0 {
				r = float64(overlap) / float64(len(exact[i]))
			}
			if r < minR {
				minR = r
			}
			sum += r
		}
		rung.MinRecall = minR
		rung.MeanRecall = sum / float64(len(probes))
		p.rungs = append(p.rungs, rung)
		if minR >= 0.999 && !rung.Int8 {
			break
		}
	}
	if s.cfg.Index == vectordb.IndexFlat {
		// The plain flat scan is exact by construction — its terminal rung
		// needs no measurement and guarantees every bound stays satisfiable.
		p.rungs = append(p.rungs, Rung{MinRecall: 1, MeanRecall: 1})
	}
	p.calibrated = true
}

// plan chooses the cheapest plan predicted to satisfy opts.MinRecall: the
// first ladder rung whose worst-case calibrated recall clears the bound
// plus the safety margin, escalating to exact search when none does or no
// calibration data exists (an empty, unbuilt or never-sampled system plans
// exact — recall 1 by construction, never a silent miss). Every
// validateEvery-th adaptive plan is validated inline against exact ground
// truth for the live query; a miss both escalates that query to exact and
// widens the margin for later ones.
func (p *planner) plan(ctx context.Context, s *System, text string, opts QueryOptions) Plan {
	base := s.cfg.FixedPlan(opts)
	exact := func() Plan {
		e := base
		e.Exact = true
		e.Int8 = false
		e.Kind = PlanAdaptiveExact
		e.PredictedRecall = 1
		return e
	}
	if opts.Exhaustive {
		return exact()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ensureCalibratedLocked(s)
	if !p.calibrated || len(p.rungs) == 0 {
		return exact()
	}
	need := opts.MinRecall + p.margin
	var chosen *Rung
	for i := range p.rungs {
		if p.rungs[i].MinRecall >= need {
			chosen = &p.rungs[i]
			break
		}
	}
	if chosen == nil {
		return exact()
	}
	pl := base
	pl.Kind = PlanAdaptive
	pl.PredictedRecall = chosen.MinRecall
	pl.Int8 = chosen.Int8
	if chosen.NProbe > 0 {
		pl.NProbe = chosen.NProbe
	}
	if chosen.Ef > 0 {
		pl.Ef = chosen.Ef
	}
	if !pl.SkipRerank {
		if m, ok := p.rarestTermFramesLocked(text); ok {
			pl.RerankFrames = AdaptRerankBudget(m, base.RerankFrames, base.TopN)
		}
	}
	p.planned++
	if p.validateEvery > 0 && p.planned%p.validateEvery == 0 {
		// The inline probe is real per-query work; give it a span so slow
		// planning shows up attributed in the caller's trace, not as a
		// mystery gap between plan and stage1.
		_, vsp := obs.Start(ctx, "plan.validate")
		measured, err := s.StageRecall(text, pl)
		vsp.End()
		if err == nil {
			p.lastMeasured = measured
			if measured < opts.MinRecall {
				p.margin = math.Min(plannerMaxMargin, p.margin+(opts.MinRecall-measured)+0.01)
				return exact()
			}
			if measured-opts.MinRecall > p.margin {
				p.margin = math.Max(0.01, p.margin*0.9)
			}
		}
	}
	return pl
}

// rarestTermFramesLocked estimates how many distinct keyframes can match
// the query at all: the smallest per-term frame count over the query's
// fast-search terms. A term absent from the corpus estimates zero.
func (p *planner) rarestTermFramesLocked(text string) (int, bool) {
	parsed := query.Parse(text)
	m, found := 0, false
	for _, t := range parsed.FastTerms() {
		frames := 0
		if st, ok := p.terms[t.Name]; ok {
			frames = st.frames
		}
		if !found || frames < m {
			m, found = frames, true
		}
	}
	return m, found
}

// AdaptRerankBudget trims the stage-2 frame budget for selective queries:
// when at most m frames can match, examining many more than m candidates
// only burns transformer passes on frames that cannot ground. The budget
// never grows past the configured default (the fixed path's cost ceiling)
// and never shrinks below the answer size.
func AdaptRerankBudget(m, def, topN int) int {
	budget := m + 4
	floor := topN
	if floor < 8 {
		floor = 8
	}
	if budget < floor {
		budget = floor
	}
	if budget > def {
		budget = def
	}
	return budget
}

// PlanStats exports the planning digest a scatter-gather coordinator
// combines across shards: selectivity sample, posting statistics, and the
// calibrated effort ladder (calibrating lazily first if the corpus changed).
func (s *System) PlanStats() PlanStats {
	p := s.planner
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ensureCalibratedLocked(s)
	st := PlanStats{
		Entities:    s.Entities(),
		Dim:         p.dim,
		SampleEvery: p.sampleEvery,
		Sample:      append([]float32(nil), p.sample...),
		Rungs:       append([]Rung(nil), p.rungs...),
		Calibrated:  p.calibrated,
		Margin:      p.margin,
	}
	st.Terms = make([]TermCount, 0, len(p.terms))
	for name, ts := range p.terms {
		st.Terms = append(st.Terms, TermCount{Name: name, Objects: ts.objects, Frames: ts.frames})
	}
	sort.Slice(st.Terms, func(i, j int) bool { return st.Terms[i].Name < st.Terms[j].Name })
	return st
}

// LastMeasuredRecall reports the most recent validation-loop measurement
// (0 until the loop has run) — adaptive plans report measured recall the
// way the ANN indexes report theirs.
func (s *System) LastMeasuredRecall() float64 {
	s.planner.mu.Lock()
	defer s.planner.mu.Unlock()
	return s.planner.lastMeasured
}

// probeTextVectors embeds vocabulary terms as fast-search query vectors —
// calibration probes shaped like live queries.
func (s *System) probeTextVectors(terms []string) [][]float32 {
	var out [][]float32
	for _, t := range terms {
		parsed := query.Parse(t)
		qv := s.text.FastVec(parsed)
		if mat.Norm(qv) == 0 {
			continue
		}
		out = append(out, s.space.Project(qv))
	}
	return out
}

// StageRecall measures a plan's stage-1 recall for one query text against
// the exact top-FastK ground truth: |plan hits ∩ exact hits| / |exact
// hits|. This is the planner's validation measurement and the bench
// harness's "measured recall" column.
func (s *System) StageRecall(text string, plan Plan) (float64, error) {
	plan = s.cfg.NormalizePlan(plan)
	q, err := s.encodeQuery(text)
	if err != nil {
		return 0, err
	}
	exact, err := s.searchVectors(q, plan.FastK, ann.Params{Exhaustive: true})
	if err != nil {
		return 0, err
	}
	if len(exact) == 0 {
		return 1, nil
	}
	k := plan.ShardK
	if k <= 0 {
		k = plan.FastK
	}
	hits, err := s.searchVectors(q, k, plan.annParams())
	if err != nil {
		return 0, err
	}
	ids := make(map[int64]bool, len(hits))
	for _, h := range hits {
		ids[h.ID] = true
	}
	overlap := 0
	for _, h := range exact {
		if ids[h.ID] {
			overlap++
		}
	}
	return float64(overlap) / float64(len(exact)), nil
}
