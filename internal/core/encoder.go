package core

import (
	"fmt"

	"repro/internal/embed"
	"repro/internal/mat"
	"repro/internal/query"
)

// QueryEncoder embeds query texts into the projected fast-search space of a
// Config without a corpus behind it. Embedding is corpus-independent (the
// space and text encoder are seeded, never trained), so a coordinator with
// no in-process system — a scatter-gather engine planning across remote
// shards — scores candidate vectors exactly as the shards would.
type QueryEncoder struct {
	space *embed.Space
	text  *embed.TextEncoder
}

// NewQueryEncoder builds the encoder for a (resolved or unresolved) Config;
// it must match the Seed/Dim/ProjDim of the systems whose vectors it scores.
func NewQueryEncoder(cfg Config) *QueryEncoder {
	cfg = cfg.withDefaults()
	space := embed.NewSpace(cfg.Dim, cfg.ProjDim, cfg.Seed^0x5bace)
	return &QueryEncoder{space: space, text: &embed.TextEncoder{Space: space}}
}

// Encode parses and embeds a query text, rejecting texts with no
// recognised vocabulary term (ErrNoRecognisedTerms).
func (e *QueryEncoder) Encode(text string) (mat.Vec, error) {
	parsed := query.Parse(text)
	qvec := e.text.FastVec(parsed)
	if mat.Norm(qvec) == 0 {
		return nil, fmt.Errorf("core: query %q: %w", text, ErrNoRecognisedTerms)
	}
	return e.space.Project(qvec), nil
}
