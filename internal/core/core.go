// Package core implements LOVO itself: the three modules of Section III
// wired together over the substrate packages.
//
//   - Video Summary (Section IV): keyframe extraction, patch encoding with
//     the decoupled vision encoder, box and class heads, and vector
//     collection construction.
//   - Database Storage (Section V): class embeddings in the vector database
//     under a product-quantized inverted multi-index, with bounding boxes
//     and frame identifiers in the relational side-store joined by patch ID.
//   - Query Strategy (Section VI, Algorithm 2): top-k fast search over the
//     index with the whole-sentence query embedding, then cross-modality
//     rerank of the candidate frames.
//
// The orthogonal knobs the paper calls out — keyframe strategy, index kind,
// rerank on/off, exhaustive search — are all Config/QueryOptions fields, so
// every ablation of Table IV and every ANN variant of Table V runs through
// this one type.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ann"
	"repro/internal/embed"
	"repro/internal/keyframe"
	"repro/internal/mat"
	"repro/internal/relational"
	"repro/internal/vectordb"
	"repro/internal/video"
	"repro/internal/vit"
	"repro/internal/xmodal"
)

// Field widths of the packed patch ID. Exceeding any of them would silently
// corrupt the join key shared by the vector and relational stores, so
// PackPatchID refuses out-of-range coordinates.
const (
	MaxVideoID  = 1<<16 - 1 // 16-bit video field
	MaxFrameIdx = 1<<28 - 1 // 28-bit frame field
	MaxPatch    = 1<<12 - 1 // 12-bit patch field
)

// PackPatchID encodes (video, frame, patch) into the shared join key linking
// the vector database to the relational store: 16 bits of video, 28 of
// frame, 12 of patch. Coordinates outside those field widths would alias
// other patches' keys, so it panics on out-of-range input; Ingest validates
// video data up front and returns an error before reaching this point.
func PackPatchID(videoID, frameIdx, patch int) int64 {
	if videoID < 0 || videoID > MaxVideoID ||
		frameIdx < 0 || frameIdx > MaxFrameIdx ||
		patch < 0 || patch > MaxPatch {
		panic(fmt.Sprintf(
			"core: patch ID out of range: video %d (0..%d), frame %d (0..%d), patch %d (0..%d)",
			videoID, MaxVideoID, frameIdx, MaxFrameIdx, patch, MaxPatch))
	}
	return int64(videoID)<<40 | int64(frameIdx)<<12 | int64(patch)
}

// UnpackPatchID reverses PackPatchID.
func UnpackPatchID(id int64) (videoID, frameIdx, patch int) {
	return int(id >> 40), int(id >> 12 & 0xfffffff), int(id & 0xfff)
}

// Config parameterises a LOVO system. Zero values select the defaults used
// throughout the evaluation.
type Config struct {
	// Dim is the vision/text embedding dimension D (default 64).
	Dim int
	// ProjDim is the indexed class-embedding dimension D′ (default 32).
	ProjDim int
	// Seed drives every stochastic component.
	Seed uint64
	// Keyframe is the extraction strategy (default keyframe.MVMed).
	Keyframe keyframe.Strategy
	// GridW, GridH give the ViT patch grid (default 16×9).
	GridW, GridH int
	// Index is the vector index kind (default vectordb.IndexIMI).
	Index vectordb.IndexKind
	// IndexOptions tune the index build; zero fields use defaults with
	// KeepRaw forced on (Algorithm 1 re-scores exactly).
	IndexOptions vectordb.IndexOptions
	// FastK is the fast-search candidate count k (default 100).
	FastK int
	// TopN is the number of reranked frames returned (default 10).
	TopN int
	// RerankFrames bounds the candidate frames stage 2 examines
	// (default 16); the paper's rerank similarly operates on a small
	// candidate subset so its cost stays independent of dataset size.
	RerankFrames int
	// NProbe is the per-subspace cluster count A probed by Algorithm 1
	// (default 16).
	NProbe int
	// Ef is the HNSW search beam (default 64).
	Ef int
	// Rerank configures the cross-modality transformer.
	Rerank xmodal.Config
	// Streaming enables segmented incremental indexing (the paper's
	// Section IX future work): inserts accumulate in a growing segment
	// that is sealed and indexed in isolation, so continuous video
	// updates never trigger full index rebuilds. BuildIndex seals the
	// current segment instead of rebuilding.
	Streaming bool
	// SegmentSize is the streaming seal threshold (default 4096).
	SegmentSize int
	// Workers bounds the goroutines the concurrent execution engine uses
	// for keyframe encoding during Ingest and for the stage-2 rerank
	// fan-out. Zero means runtime.NumCPU(); 1 forces the serial paths.
	// Results are byte-identical at every setting.
	Workers int
	// PlannerValidateEvery is the planner's validation cadence: every Nth
	// adaptive plan is measured inline against exact-search ground truth
	// and the safety margin adapted from the error (default 64; negative
	// disables validation).
	PlannerValidateEvery int
}

func (c Config) withDefaults() Config {
	if c.Dim == 0 {
		c.Dim = 64
	}
	if c.ProjDim == 0 {
		c.ProjDim = 32
	}
	if c.Keyframe == nil {
		c.Keyframe = keyframe.MVMed{}
	}
	if c.GridW == 0 {
		c.GridW = 16
	}
	if c.GridH == 0 {
		c.GridH = 9
	}
	if c.Index == "" {
		c.Index = vectordb.IndexIMI
	}
	if c.IndexOptions.P == 0 {
		c.IndexOptions.P = 4
	}
	if c.IndexOptions.M == 0 {
		c.IndexOptions.M = 64
	}
	if c.IndexOptions.M0 == 0 {
		c.IndexOptions.M0 = 16
	}
	if c.IndexOptions.Seed == 0 {
		c.IndexOptions.Seed = c.Seed ^ 0x1d8
	}
	c.IndexOptions.KeepRaw = true
	if c.FastK == 0 {
		c.FastK = 100
	}
	if c.TopN == 0 {
		c.TopN = 10
	}
	if c.RerankFrames == 0 {
		c.RerankFrames = 16
	}
	if c.NProbe == 0 {
		c.NProbe = 16
	}
	if c.Ef == 0 {
		c.Ef = 64
	}
	if c.Rerank.Seed == 0 {
		c.Rerank.Seed = c.Seed ^ 0x2e2a
	}
	if c.PlannerValidateEvery == 0 {
		c.PlannerValidateEvery = 64
	}
	if c.Streaming && c.SegmentSize <= 0 {
		// Mirror vectordb.NewSegmented's default so Resolved reports the
		// threshold the store actually runs with — coordinator/worker config
		// verification compares resolved summaries.
		c.SegmentSize = 4096
	}
	return c
}

// Resolved returns the configuration with every zero field replaced by its
// default — the values New would run with. A coordinator with no in-process
// system uses it to mirror the workers' FastK/TopN/RerankFrames exactly.
func (c Config) Resolved() Config { return c.withDefaults() }

type frameKey struct {
	video int
	frame int
}

// System is a running LOVO instance.
type System struct {
	cfg    Config
	space  *embed.Space
	vision *embed.VisionEncoder
	text   *embed.TextEncoder
	vitCfg vit.Config
	model  *xmodal.Model

	db      *vectordb.DB
	col     *vectordb.Collection          // monolithic mode
	seg     *vectordb.SegmentedCollection // streaming mode
	meta    *relational.Store
	patches *relational.Table

	// mu guards the mutable system state below. The substrate stores
	// (vector collection, relational table, embedding space) carry their
	// own locks, so queries may run concurrently with ingest: Query takes
	// read locks only, Ingest and BuildIndex take the write lock briefly
	// around state mutation — never across encoding or index builds.
	mu sync.RWMutex

	// keyframes retains the scene description of every indexed keyframe;
	// the rerank stage re-examines these, as the paper's rerank reloads
	// keyframe images from storage.
	keyframes map[frameKey]*video.Frame

	stats IngestStats
	built bool

	// planner accumulates selectivity samples at ingest and calibrates
	// index effort lazily; it resolves accuracy-bounded queries into
	// concrete plans.
	planner *planner

	// ingestGen counts completed mutations (Ingest, BuildIndex, snapshot
	// loads). Serving tiers use it to invalidate query-result caches: a
	// cached answer is valid only while the generation it was computed
	// under still matches.
	ingestGen atomic.Uint64
}

// IngestStats accumulates Video Summary metrics.
type IngestStats struct {
	// Videos, Frames, Keyframes and Tokens count processed units.
	Videos, Frames, Keyframes, Tokens int
	// Processing is the video-summary time (keyframes + encoding).
	Processing time.Duration
	// Indexing is the index construction time.
	Indexing time.Duration
}

// patchSchema is the relational layout of Section V-B: the vector database
// and this table share the patch ID.
func patchSchema() relational.Schema {
	return relational.Schema{
		Columns: []relational.Column{
			{Name: "patch_id", Type: relational.Int64},
			{Name: "video_id", Type: relational.Int64},
			{Name: "frame_idx", Type: relational.Int64},
			{Name: "patch", Type: relational.Int64},
			{Name: "box_x", Type: relational.Float64},
			{Name: "box_y", Type: relational.Float64},
			{Name: "box_w", Type: relational.Float64},
			{Name: "box_h", Type: relational.Float64},
			{Name: "objectness", Type: relational.Float64},
		},
		Key: "patch_id",
	}
}

// New constructs a LOVO system.
func New(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if patches := cfg.GridW * cfg.GridH; patches > vit.MaxGridPatches {
		return nil, fmt.Errorf("core: %dx%d patch grid (%d patches) exceeds the %d-patch budget of the packed patch ID",
			cfg.GridW, cfg.GridH, patches, vit.MaxGridPatches)
	}
	space := embed.NewSpace(cfg.Dim, cfg.ProjDim, cfg.Seed^0x5bace)
	s := &System{
		cfg:    cfg,
		space:  space,
		vision: &embed.VisionEncoder{Space: space, Seed: cfg.Seed ^ 0x115},
		text:   &embed.TextEncoder{Space: space},
		model:  xmodal.New(space, cfg.Rerank),
		db:     vectordb.New(),
		meta:   relational.NewStore(),

		keyframes: make(map[frameKey]*video.Frame),
	}
	s.planner = newPlanner(cfg)
	s.vitCfg = vit.Config{GridW: cfg.GridW, GridH: cfg.GridH, Encoder: s.vision}
	if cfg.Streaming {
		seg, err := vectordb.NewSegmented("patches",
			vectordb.Schema{Dim: cfg.ProjDim, Normalize: true},
			cfg.Index, cfg.IndexOptions, cfg.SegmentSize)
		if err != nil {
			return nil, err
		}
		s.seg = seg
	} else {
		col, err := s.db.CreateCollection("patches", vectordb.Schema{Dim: cfg.ProjDim, Normalize: true})
		if err != nil {
			return nil, err
		}
		s.col = col
	}
	tbl, err := s.meta.CreateTable("patches", patchSchema())
	if err != nil {
		return nil, err
	}
	if err := tbl.CreateIndex("frame_idx"); err != nil {
		return nil, err
	}
	s.patches = tbl
	return s, nil
}

// Ingest runs Video Summary over one video: keyframe extraction, patch
// encoding, and vector-collection construction. Call BuildIndex after the
// last video (or keep ingesting — post-build inserts flow into the index).
//
// Keyframe encoding — the ViT forward pass that dominates one-time video
// processing — fans out across cfg.Workers goroutines; vector and
// relational inserts then happen in keyframe order on the calling
// goroutine, so the stored state is byte-identical to a serial ingest.
// Ingest is safe to call while other goroutines run Query.
func (s *System) Ingest(v *video.Video) error {
	if v.ID < 0 || v.ID > MaxVideoID {
		return fmt.Errorf("core: video ID %d outside the %d-bit patch-ID field (0..%d)", v.ID, 16, MaxVideoID)
	}
	//lovo:nondeterministic-ok stats.Processing is ingest-cost bookkeeping; stored rows and vectors never depend on it
	start := time.Now()
	keys := s.cfg.Keyframe.Select(v)
	for _, fi := range keys {
		if idx := v.Frames[fi].Index; idx < 0 || idx > MaxFrameIdx {
			return fmt.Errorf("core: frame index %d outside the %d-bit patch-ID field (0..%d)", idx, 28, MaxFrameIdx)
		}
	}

	// Stage 1 (parallel): encode every selected keyframe.
	encoded := make([][]vit.Token, len(keys))
	ParallelFor(len(keys), ResolveWorkers(s.cfg.Workers), func(i int) {
		encoded[i] = vit.EncodeFrame(s.vitCfg, &v.Frames[keys[i]])
	})

	// Stage 2 (serial, deterministic order): route tokens to the stores.
	// A vector becomes searchable the moment it enters the collection, so
	// everything a concurrent Query dereferences for a hit — the keyframe
	// and the relational row behind the metadata join — must be committed
	// before the vector itself.
	for i, fi := range keys {
		f := &v.Frames[fi]
		fc := *f
		s.mu.Lock()
		s.keyframes[frameKey{v.ID, f.Index}] = &fc
		s.stats.Keyframes++
		s.mu.Unlock()
		s.planner.noteFrame(&fc)
		for _, tok := range encoded[i] {
			pid := PackPatchID(v.ID, f.Index, tok.Patch)
			row := relational.Row{
				pid, int64(v.ID), int64(f.Index), int64(tok.Patch),
				tok.Box.X, tok.Box.Y, tok.Box.W, tok.Box.H,
				float64(tok.Objectness),
			}
			if err := s.patches.Insert(row); err != nil {
				return fmt.Errorf("core: inserting patch metadata: %w", err)
			}
			if err := s.insertVector(pid, tok.Class); err != nil {
				return fmt.Errorf("core: inserting patch vector: %w", err)
			}
			s.planner.observe(tok.Class)
		}
		s.mu.Lock()
		s.stats.Tokens += len(encoded[i])
		s.mu.Unlock()
	}
	s.mu.Lock()
	s.stats.Videos++
	s.stats.Frames += len(v.Frames)
	//lovo:nondeterministic-ok stats.Processing is ingest-cost bookkeeping; stored rows and vectors never depend on it
	s.stats.Processing += time.Since(start)
	s.mu.Unlock()
	s.ingestGen.Add(1)
	return nil
}

// insertVector routes a class embedding to the configured store.
func (s *System) insertVector(id int64, v []float32) error {
	if s.seg != nil {
		return s.seg.Insert(id, v)
	}
	return s.col.Insert(id, v)
}

// BuildIndex constructs the configured vector index over everything
// ingested so far. In streaming mode it seals the current growing segment
// instead — sealed segments are never rebuilt.
func (s *System) BuildIndex() error {
	//lovo:nondeterministic-ok stats.Indexing is build-cost bookkeeping; the built index never depends on it
	start := time.Now()
	if s.seg != nil {
		// Seal queues a background build; BuildIndex is the explicit batch
		// boot path, so wait for the maintenance worker to quiesce — the
		// caller expects a fully indexed system (and a deterministic one:
		// approximate answers after BuildIndex must not depend on build
		// timing).
		if err := s.seg.Seal(); err != nil {
			return fmt.Errorf("core: sealing segment: %w", err)
		}
		if err := s.seg.WaitMaintenance(); err != nil {
			return fmt.Errorf("core: sealing segment: %w", err)
		}
	} else if err := s.col.BuildIndex(s.cfg.Index, s.cfg.IndexOptions); err != nil {
		return fmt.Errorf("core: building %s index: %w", s.cfg.Index, err)
	}
	s.mu.Lock()
	//lovo:nondeterministic-ok stats.Indexing is build-cost bookkeeping; the built index never depends on it
	s.stats.Indexing += time.Since(start)
	s.built = true
	s.mu.Unlock()
	s.ingestGen.Add(1)
	return nil
}

// IngestGen returns the mutation generation: it increments on every
// completed Ingest, BuildIndex and LoadSnapshot. Cached query results are
// valid only while the generation is unchanged.
func (s *System) IngestGen() uint64 { return s.ingestGen.Load() }

// Config returns the system configuration with defaults resolved — the
// authoritative FastK/TopN/RerankFrames values a scatter-gather engine
// needs to mirror the single-system query path exactly.
func (s *System) Config() Config { return s.cfg }

// Built reports whether BuildIndex has completed at least once.
func (s *System) Built() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.built
}

// searchVectors runs fast search against the configured store. The store
// pointers are read under the lock so LoadSnapshot's store swap cannot
// race a concurrent query.
func (s *System) searchVectors(q []float32, k int, p ann.Params) ([]mat.Scored, error) {
	s.mu.RLock()
	col, seg := s.col, s.seg
	s.mu.RUnlock()
	if seg != nil {
		return seg.Search(q, k, p)
	}
	return col.Search(q, k, p)
}

// searchVectorsBatch runs fast search for many queries sharing one (k,
// params) shape. Monolithic stores route through Collection.SearchBatch so
// the whole group shares one cache-blocked memory sweep; segmented stores
// fall back to per-query search (segments already partition the scan).
// Results align with qs and are bit-identical to per-query searchVectors.
func (s *System) searchVectorsBatch(qs []mat.Vec, k int, p ann.Params) ([][]mat.Scored, error) {
	s.mu.RLock()
	col, seg := s.col, s.seg
	s.mu.RUnlock()
	if seg != nil {
		out := make([][]mat.Scored, len(qs))
		for i, q := range qs {
			hits, err := seg.Search(q, k, p)
			if err != nil {
				return nil, err
			}
			out[i] = hits
		}
		return out, nil
	}
	return col.SearchBatch(qs, k, p)
}

// Entities returns the number of indexed patch vectors.
func (s *System) Entities() int {
	s.mu.RLock()
	col, seg := s.col, s.seg
	s.mu.RUnlock()
	if seg != nil {
		return seg.Len()
	}
	return col.Len()
}

// Segmented exposes the streaming-mode store (nil in monolithic mode).
func (s *System) Segmented() *vectordb.SegmentedCollection { return s.seg }

// SegmentStats reports the per-state segment breakdown of the streaming
// store; ok is false in monolithic mode.
func (s *System) SegmentStats() (vectordb.SegmentStats, bool) {
	s.mu.RLock()
	seg := s.seg
	s.mu.RUnlock()
	if seg == nil {
		return vectordb.SegmentStats{}, false
	}
	return seg.SegmentStats(), true
}

// MaintLog returns the streaming store's recent maintenance operations
// (seal builds, compactions) with their obs span trees; empty in
// monolithic mode.
func (s *System) MaintLog() []vectordb.MaintEvent {
	s.mu.RLock()
	seg := s.seg
	s.mu.RUnlock()
	if seg == nil {
		return nil
	}
	return seg.MaintLog()
}

// Stats returns a snapshot of the accumulated ingest statistics.
func (s *System) Stats() IngestStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// Collection exposes the underlying vector collection (stats, experiments).
func (s *System) Collection() *vectordb.Collection {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.col
}

// DB exposes the underlying vector database, e.g. for snapshot persistence
// (vectordb.DB.Save / vectordb.Load).
func (s *System) DB() *vectordb.DB {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db
}

// Keyframe returns the retained keyframe for (video, frame), if indexed.
// The frame is stored once at ingest and never mutated, so sharing the
// pointer across goroutines is safe.
func (s *System) Keyframe(videoID, frameIdx int) (*video.Frame, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.keyframes[frameKey{videoID, frameIdx}]
	return f, ok
}
