package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/ann"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/video"
)

// QueryOptions tune one query; zero values inherit the system Config.
type QueryOptions struct {
	// FastK overrides the fast-search candidate count.
	FastK int
	// TopN overrides the number of reranked frames returned.
	TopN int
	// DisableRerank skips stage 2 ("w/o Rerank" ablation): fast-search
	// hits are returned directly.
	DisableRerank bool
	// Exhaustive disables ANNS pruning ("w/o ANNS" ablation).
	Exhaustive bool
	// Int8 pins the int8-quantized stage-1 scoring path (flat, IVF-PQ):
	// candidates are scanned through per-vector int8 codes and the
	// shortlist is re-scored exactly. Recall-gated, not bit-identical —
	// callers that want the planner to decide should set MinRecall instead
	// and let calibration pick int8 only when it clears the bound.
	// Ignored when Exhaustive is set.
	Int8 bool
	// RerankFrames overrides the stage-2 frame budget.
	RerankFrames int
	// Workers overrides the stage-2 rerank fan-out width for this query
	// (zero inherits Config.Workers, which defaults to runtime.NumCPU();
	// 1 forces the serial rerank). Output is identical at every setting.
	Workers int
	// MinRecall, when non-zero, is the accuracy bound: the planner picks
	// the cheapest plan whose calibrated stage-1 recall (against the exact
	// top-FastK) is predicted to reach at least this value, escalating to
	// exact search when no approximate setting qualifies. Must lie in
	// (0, 1]; zero keeps the fixed default plan. Validate with
	// ValidateMinRecall before accepting untrusted input.
	MinRecall float64
	// Plan, when non-nil, pins the execution plan explicitly: the query
	// runs these exact knobs (zero fields resolved against the Config by
	// NormalizePlan) and ignores the other option fields and the planner.
	// A pinned plan answers byte-identically across local, sharded,
	// replicated and remote deployments.
	Plan *Plan
}

// ErrBadMinRecall marks a MinRecall bound outside (0, 1] — a caller input
// error serving tiers map to 400.
var ErrBadMinRecall = errors.New("core: MinRecall must lie in (0, 1]")

// ValidateMinRecall rejects accuracy bounds outside (0, 1]. Zero is valid
// and means "no bound" (the fixed default plan).
func ValidateMinRecall(r float64) error {
	if r == 0 {
		return nil
	}
	if math.IsNaN(r) || r < 0 || r > 1 {
		return fmt.Errorf("%w (got %v)", ErrBadMinRecall, r)
	}
	return nil
}

// ResultObject is one retrieved object.
type ResultObject struct {
	// VideoID and FrameIdx locate the keyframe.
	VideoID  int
	FrameIdx int
	// Box is the object's bounding box.
	Box video.Box
	// Score is the ranking score (cross-modality score after rerank,
	// fast-search similarity otherwise).
	Score float32
	// PatchID is the vector-database key that produced the candidate
	// (zero for rerank-promoted objects that had no direct hit).
	PatchID int64
}

// Result is a ranked answer with stage timings.
type Result struct {
	// Objects is the ranked object list (frames with bounding boxes).
	Objects []ResultObject
	// FastSearch is the stage-1 latency (encode + ANNS + metadata join).
	FastSearch time.Duration
	// Rerank is the stage-2 latency.
	Rerank time.Duration
	// CandidateFrames is the number of distinct frames sent to rerank.
	CandidateFrames int
}

// Total returns the user-perceived search latency.
func (r *Result) Total() time.Duration { return r.FastSearch + r.Rerank }

// ErrNoRecognisedTerms marks a query whose text contains no vocabulary
// term at all — the caller's input is unanswerable, not a system failure.
// Serving tiers test with errors.Is to map it to a client error.
var ErrNoRecognisedTerms = errors.New("query contains no recognised terms")

// FrameRef identifies one candidate keyframe for the stage-2 rerank plus
// the best fast-search hit that nominated it. It is the unit of work a
// scatter-gather engine routes back to the shard owning the keyframe.
type FrameRef struct {
	VideoID  int
	FrameIdx int
	// PatchID is the best (first, in canonical hit order) fast-search hit
	// of this frame; rerank-promoted objects inherit it.
	PatchID int64
}

// Grounding is the stage-2 output for one candidate frame: the objects the
// cross-modality model grounded (plateau-limited) and the frame's best
// score, which drives the final frame ranking.
type Grounding struct {
	Ref     FrameRef
	Objects []ResultObject
	Best    float32
	// Grounds reports whether the frame produced any grounding at all;
	// frames that ground nothing never enter the final ranking.
	Grounds bool
}

// FastHits is the stage-1 output: the joined fast-search hits in canonical
// order — descending score, ascending patch ID — which every index kind
// produces and which the scatter-gather merge preserves.
type FastHits struct {
	Objects []ResultObject
	Elapsed time.Duration
}

// encodeQuery parses and embeds a query text into the projected fast-search
// space, rejecting texts with no recognised vocabulary term.
func (s *System) encodeQuery(text string) (mat.Vec, error) {
	parsed := query.Parse(text)
	qvec := s.text.FastVec(parsed)
	if mat.Norm(qvec) == 0 {
		return nil, fmt.Errorf("core: query %q: %w", text, ErrNoRecognisedTerms)
	}
	return s.space.Project(qvec), nil
}

// FastSearch runs stage 1 of Algorithm 2 under the fixed plan the options
// resolve to: encode the query, fast-search the vector index for the
// top-fastK patches, and join the hits against the relational store. Hits
// are returned in canonical (score desc, patch ID asc) order. Safe to call
// concurrently with Ingest.
func (s *System) FastSearch(text string, opts QueryOptions) (*FastHits, error) {
	//lovo:ctx-ok public ctx-less wrapper; SearchPlanned is the traced path
	return s.SearchPlanned(context.Background(), text, s.cfg.FixedPlan(opts))
}

// SearchPlanned runs stage 1 under an explicit plan: the leg's own depth
// (ShardK) and index effort (Exact/NProbe/Ef) come from the plan, not the
// Config. This is the stage-1 leg every deployment shape executes — the
// single system directly, each shard of an engine via Plan.Leg, and RPC
// workers behind the wire's fast-search op. A traced context records
// encode / ANN / metadata-join sub-spans.
func (s *System) SearchPlanned(ctx context.Context, text string, plan Plan) (*FastHits, error) {
	plan = s.cfg.NormalizePlan(plan)
	//lovo:nondeterministic-ok Elapsed is reported latency metadata; hit selection and order never read it
	start := time.Now()
	_, esp := obs.Start(ctx, "encode")
	qproj, err := s.encodeQuery(text)
	esp.End()
	if err != nil {
		return nil, err
	}
	_, asp := obs.Start(ctx, "ann")
	hits, err := s.searchVectors(qproj, plan.ShardK, plan.annParams())
	if asp.On() {
		asp.Detail(fmt.Sprintf("k=%d hits=%d", plan.ShardK, len(hits)))
	}
	asp.End()
	if err != nil {
		return nil, fmt.Errorf("core: fast search: %w", err)
	}
	_, jsp := obs.Start(ctx, "join")
	defer jsp.End()
	objects, err := s.joinHits(hits)
	if err != nil {
		return nil, err
	}
	//lovo:nondeterministic-ok Elapsed is reported latency metadata; hit selection and order never read it
	return &FastHits{Objects: objects, Elapsed: time.Since(start)}, nil
}

// annParams derives the index search parameters a plan's stage-1 leg runs
// with — the single place the plan-to-Params mapping lives, so every stage-1
// surface (single query, batch, calibration measurement) agrees on it.
func (p Plan) annParams() ann.Params {
	return ann.Params{
		NProbe:     p.NProbe,
		Ef:         p.Ef,
		Exhaustive: p.Exact,
		Int8:       p.Int8,
	}
}

// joinHits resolves fast-search hits against the relational store into
// canonical ResultObjects, preserving hit order.
func (s *System) joinHits(hits []mat.Scored) ([]ResultObject, error) {
	objects := make([]ResultObject, 0, len(hits))
	for _, h := range hits {
		row, err := s.patches.Get(h.ID)
		if err != nil {
			return nil, fmt.Errorf("core: metadata join for patch %d: %w", h.ID, err)
		}
		objects = append(objects, ResultObject{
			VideoID:  int(row[1].(int64)),
			FrameIdx: int(row[2].(int64)),
			Box:      video.Box{X: row[4].(float64), Y: row[5].(float64), W: row[6].(float64), H: row[7].(float64)},
			Score:    h.Score,
			PatchID:  h.ID,
		})
	}
	return objects, nil
}

// SearchPlannedBatch runs the stage-1 leg for many (text, plan) pairs in one
// pass, amortizing the vector-store sweep across queries: queries whose
// plans resolve to identical search parameters are grouped and handed to the
// store's batched scan (one cache-blocked memory pass scores every query in
// the group — see flat.SearchBatch), and each group's hits are joined
// per-query afterwards. Results align with texts and are bit-identical to
// calling SearchPlanned per pair; a query whose text fails to encode fails
// the whole batch, mirroring the per-query error.
func (s *System) SearchPlannedBatch(ctx context.Context, texts []string, plans []Plan) ([]*FastHits, error) {
	if len(plans) != len(texts) {
		return nil, fmt.Errorf("core: stage-1 batch of %d texts given %d plans", len(texts), len(plans))
	}
	//lovo:nondeterministic-ok Elapsed is reported latency metadata; hit selection and order never read it
	start := time.Now()
	_, esp := obs.Start(ctx, "encode")
	qs := make([]mat.Vec, len(texts))
	for i, text := range texts {
		q, err := s.encodeQuery(text)
		if err != nil {
			esp.End()
			return nil, fmt.Errorf("core: batch query %d (%q): %w", i, text, err)
		}
		qs[i] = q
	}
	esp.End()

	// Group queries by their resolved search shape. ann.Params is a
	// comparable struct, so (depth, params) keys a map directly; each
	// group shares one batched sweep.
	type groupKey struct {
		k int
		p ann.Params
	}
	groups := make(map[groupKey][]int)
	for i := range plans {
		plans[i] = s.cfg.NormalizePlan(plans[i])
		gk := groupKey{k: plans[i].ShardK, p: plans[i].annParams()}
		groups[gk] = append(groups[gk], i)
	}

	_, asp := obs.Start(ctx, "ann")
	allHits := make([][]mat.Scored, len(texts))
	for gk, idxs := range groups {
		gq := make([]mat.Vec, len(idxs))
		for j, i := range idxs {
			gq[j] = qs[i]
		}
		lists, err := s.searchVectorsBatch(gq, gk.k, gk.p)
		if err != nil {
			asp.End()
			return nil, fmt.Errorf("core: fast search: %w", err)
		}
		for j, i := range idxs {
			allHits[i] = lists[j]
		}
	}
	if asp.On() {
		asp.Detail(fmt.Sprintf("queries=%d groups=%d", len(texts), len(groups)))
	}
	asp.End()

	_, jsp := obs.Start(ctx, "join")
	defer jsp.End()
	out := make([]*FastHits, len(texts))
	//lovo:nondeterministic-ok Elapsed is reported latency metadata; hit selection and order never read it
	elapsed := time.Since(start)
	// The shared sweep has no per-query attribution; report the batch
	// stage-1 wall time on every query, which is what the caller actually
	// waited for.
	for i, hits := range allHits {
		objects, err := s.joinHits(hits)
		if err != nil {
			return nil, err
		}
		out[i] = &FastHits{Objects: objects, Elapsed: elapsed}
	}
	return out, nil
}

// MergeHits folds many canonical hit lists (e.g. one per shard) into one
// global canonical list truncated to fastK: descending score, with ties
// broken by ascending patch ID. Merging each shard's exact local top-fastK
// this way reproduces the monolithic exact top-fastK bit for bit — any hit
// in the global cut has fewer than fastK hits above it globally, hence
// fewer than fastK above it in its own shard.
func MergeHits(lists [][]ResultObject, fastK int) []ResultObject {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	merged := make([]ResultObject, 0, total)
	for _, l := range lists {
		merged = append(merged, l...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Score != merged[j].Score {
			return merged[i].Score > merged[j].Score
		}
		return merged[i].PatchID < merged[j].PatchID
	})
	if fastK > 0 && len(merged) > fastK {
		merged = merged[:fastK]
	}
	return merged
}

// CandidateFrames collapses a canonical hit list to its distinct frames in
// first-hit order, so each frame carries its best hit's patch ID.
func CandidateFrames(hits []ResultObject) []FrameRef {
	seen := make(map[frameKey]bool)
	var refs []FrameRef
	for _, h := range hits {
		k := frameKey{h.VideoID, h.FrameIdx}
		if seen[k] {
			continue
		}
		seen[k] = true
		refs = append(refs, FrameRef{VideoID: h.VideoID, FrameIdx: h.FrameIdx, PatchID: h.PatchID})
	}
	return refs
}

// SelectForRerank bounds the candidate frames to the stage-2 budget so the
// rerank cost stays independent of dataset size (Section VII-D). The budget
// is spent on temporally diverse moments: adjacent keyframes almost surely
// show the same objects, so a candidate within a few frames of an
// already-selected one is deferred until the distinct moments are
// exhausted.
func SelectForRerank(refs []FrameRef, budget int) []FrameRef {
	if budget <= 0 || len(refs) <= budget {
		return refs
	}
	const spacing = 4
	selected := make([]FrameRef, 0, budget)
	var deferred []FrameRef
	for _, cand := range refs {
		close := false
		for _, sel := range selected {
			if sel.VideoID == cand.VideoID && abs(sel.FrameIdx-cand.FrameIdx) <= spacing {
				close = true
				break
			}
		}
		if close {
			deferred = append(deferred, cand)
			continue
		}
		selected = append(selected, cand)
		if len(selected) == budget {
			break
		}
	}
	for _, cand := range deferred {
		if len(selected) == budget {
			break
		}
		selected = append(selected, cand)
	}
	return selected
}

// GroundCandidates runs stage 2 over the given candidate frames: each
// frame's retained keyframe is grounded against the query by the
// cross-modality transformer, fanning out across at most workers
// goroutines. Groundings align with refs. Frames this system does not own
// (no retained keyframe) come back with Grounds=false, so a scatter-gather
// engine may safely route only the refs a shard owns. A traced context
// records one span per grounded frame — the per-frame rerank batches are
// the dominant cost, so their spans are where a slow stage 2 localises.
func (s *System) GroundCandidates(ctx context.Context, text string, refs []FrameRef, workers int) []Grounding {
	parsed := query.Parse(text)
	toks := s.text.Tokens(parsed)
	if workers == 0 {
		workers = s.cfg.Workers
	}
	rsp := obs.FromContext(ctx)
	// Each candidate frame grounds independently, so the transformer
	// forward passes — the dominant cost of Algorithm 2 — fan out across
	// the worker pool. Outputs land in a slot indexed by candidate
	// position, so the result is byte-identical to the serial loop.
	out := make([]Grounding, len(refs))
	ParallelFor(len(refs), ResolveWorkers(workers), func(i int) {
		ref := refs[i]
		out[i].Ref = ref
		if rsp.On() {
			fsp := rsp.Child("rerank.frame")
			fsp.Detail(fmt.Sprintf("video=%d frame=%d", ref.VideoID, ref.FrameIdx))
			defer fsp.End()
		}
		f, ok := s.Keyframe(ref.VideoID, ref.FrameIdx)
		if !ok {
			return
		}
		groundings := s.model.GroundFrame(f, toks)
		for gi, g := range groundings {
			// Beyond the best grounding, a frame contributes further
			// objects only while they form a plateau of near-equal
			// scores (several pedestrians all walking, both cars of a
			// side-by-side pair); a clear drop means the remaining
			// objects don't match and would only inject false
			// positives.
			if gi >= 4 || (gi > 0 && g.Score < groundings[gi-1].Score-0.02) {
				break
			}
			out[i].Objects = append(out[i].Objects, ResultObject{
				VideoID:  ref.VideoID,
				FrameIdx: ref.FrameIdx,
				Box:      g.Box,
				Score:    g.Score,
				PatchID:  ref.PatchID,
			})
		}
		if len(groundings) > 0 {
			out[i].Best = groundings[0].Score
			out[i].Grounds = true
		}
	})
	return out
}

// RankGroundings produces the final answer from stage-2 groundings: frames
// ranked by their best grounding, the top-n frames kept, objects within
// ranked by score with deterministic (video, frame, patch ID) tie-breaks —
// Algorithm 2 returns top-n frames with boxes.
func RankGroundings(groundings []Grounding, topN int) []ResultObject {
	type fs struct {
		key   frameKey
		score float32
	}
	frameBest := make(map[frameKey]float32, len(groundings))
	for _, g := range groundings {
		if g.Grounds {
			frameBest[frameKey{g.Ref.VideoID, g.Ref.FrameIdx}] = g.Best
		}
	}
	ranked := make([]fs, 0, len(frameBest))
	for k, v := range frameBest {
		ranked = append(ranked, fs{k, v})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		if ranked[i].key.video != ranked[j].key.video {
			return ranked[i].key.video < ranked[j].key.video
		}
		return ranked[i].key.frame < ranked[j].key.frame
	})
	keep := make(map[frameKey]bool)
	for i := 0; i < len(ranked) && i < topN; i++ {
		keep[ranked[i].key] = true
	}
	var kept []ResultObject
	for _, g := range groundings {
		for _, o := range g.Objects {
			if keep[frameKey{o.VideoID, o.FrameIdx}] {
				kept = append(kept, o)
			}
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Score != kept[j].Score {
			return kept[i].Score > kept[j].Score
		}
		if kept[i].VideoID != kept[j].VideoID {
			return kept[i].VideoID < kept[j].VideoID
		}
		if kept[i].FrameIdx != kept[j].FrameIdx {
			return kept[i].FrameIdx < kept[j].FrameIdx
		}
		return kept[i].PatchID < kept[j].PatchID
	})
	return kept
}

// PlanQuery resolves the plan one query will execute: the pinned plan when
// QueryOptions.Plan is set, the planner's cheapest bound-satisfying plan
// when MinRecall is set, and otherwise the fixed default plan — exactly the
// knobs every query ran with before plans existed.
func (s *System) PlanQuery(text string, opts QueryOptions) (Plan, error) {
	//lovo:ctx-ok public ctx-less wrapper mirroring Query/QueryCtx; PlanQueryCtx is the traced path
	return s.PlanQueryCtx(context.Background(), text, opts)
}

// PlanQueryCtx is PlanQuery with a caller context: the planner's inline
// validation probe (a real exact-vs-plan measurement on the live query)
// runs under it, so a traced caller sees validation cost in its trace.
func (s *System) PlanQueryCtx(ctx context.Context, text string, opts QueryOptions) (Plan, error) {
	if err := ValidateMinRecall(opts.MinRecall); err != nil {
		return Plan{}, err
	}
	if opts.Plan != nil {
		return s.cfg.NormalizePlan(*opts.Plan), nil
	}
	if opts.MinRecall > 0 {
		return s.planner.plan(ctx, s, text, opts), nil
	}
	return s.cfg.FixedPlan(opts), nil
}

// QueryPlanned executes an explicit plan through the shared executor —
// the same composition of the stage functions shard.Engine and the RPC
// workers run, so equal plans answer byte-identically on every deployment
// shape. The context carries the tracing recorder; context.Background()
// (or any untraced context) runs the allocation-free disabled path.
func (s *System) QueryPlanned(ctx context.Context, text string, plan Plan, workers int) (*Result, error) {
	return ExecutePlan(ctx, systemTarget{s}, text, s.cfg.NormalizePlan(plan), workers)
}

// Query executes the two-stage strategy of Algorithm 2: resolve a plan
// (fixed, pinned or planner-chosen per the options), then run it through
// the shared executor — the same stage composition shard.Engine scatters
// across shards, so a one-shard engine answers byte-identically to this
// path.
func (s *System) Query(text string, opts QueryOptions) (*Result, error) {
	//lovo:ctx-ok public ctx-less wrapper; QueryCtx is the traced path
	return s.QueryCtx(context.Background(), text, opts)
}

// QueryCtx is Query with a caller context, so a traced caller gets plan
// and execution spans in its trace. Tracing never changes the answer:
// QueryCtx and Query return identical bytes for identical inputs.
func (s *System) QueryCtx(ctx context.Context, text string, opts QueryOptions) (*Result, error) {
	pctx, psp := obs.Start(ctx, "plan")
	plan, err := s.PlanQueryCtx(pctx, text, opts)
	psp.End()
	if err != nil {
		return nil, err
	}
	return s.QueryPlanned(ctx, text, plan, opts.Workers)
}

// QueryBatch answers many queries concurrently across at most clients
// goroutines (zero inherits Config.Workers, which defaults to
// runtime.NumCPU()). Results align with texts; each result is identical to
// what a lone Query call would return. The first failing query (lowest
// index) aborts the batch with its error once in-flight queries drain.
//
// QueryBatch is the concurrent-clients surface: it is safe to call from
// many goroutines and while ingest continues on another goroutine.
func (s *System) QueryBatch(texts []string, opts QueryOptions, clients int) ([]*Result, error) {
	if clients == 0 {
		clients = s.cfg.Workers
	}
	clients = ResolveWorkers(clients)
	// Batch-level concurrency already saturates the cores, so unless the
	// caller explicitly widened the per-query rerank, run each query's
	// stage 2 serially — nested NumCPU-wide pools would oversubscribe
	// the CPU with no throughput to show for it. Results are identical
	// at every width.
	if opts.Workers == 0 && clients > 1 {
		opts.Workers = 1
	}
	results := make([]*Result, len(texts))
	errs := make([]error, len(texts))
	ParallelFor(len(texts), clients, func(i int) {
		results[i], errs[i] = s.Query(texts[i], opts)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: batch query %d (%q): %w", i, texts[i], err)
		}
	}
	return results, nil
}

// QueryBatchPlanned executes one pre-resolved plan per query — the serving
// tier's batch path, which plans (and cache-keys) each query before
// execution. Stage 1 for the whole batch runs through the batched scatter
// (ExecutePlanBatch): queries whose plans resolve to identical search
// shapes share ONE cache-blocked memory sweep over the stored vectors,
// while stage 2 fans out per query across at most clients goroutines.
// Plans align with texts; results align with texts and are bit-identical
// to per-query QueryPlanned runs. The context threads the tracing recorder
// into every query of the batch.
func (s *System) QueryBatchPlanned(ctx context.Context, texts []string, plans []Plan, workers, clients int) ([]*Result, error) {
	if len(plans) != len(texts) {
		return nil, fmt.Errorf("core: batch of %d texts given %d plans", len(texts), len(plans))
	}
	if clients == 0 {
		clients = s.cfg.Workers
	}
	clients = ResolveWorkers(clients)
	if workers == 0 && clients > 1 {
		workers = 1
	}
	normalized := make([]Plan, len(plans))
	for i := range plans {
		normalized[i] = s.cfg.NormalizePlan(plans[i])
	}
	return ExecutePlanBatch(ctx, systemTarget{s}, texts, normalized, workers, clients)
}

// DedupHits removes near-duplicate fast-search hits and truncates to limit:
// multiple patches of one object predict nearly identical boxes, which
// would otherwise flood the un-reranked result list (the "w/o Rerank"
// ablation path).
func DedupHits(objs []ResultObject, limit int) []ResultObject {
	var out []ResultObject
	for _, o := range objs {
		dup := false
		for i := range out {
			if out[i].VideoID == o.VideoID && out[i].FrameIdx == o.FrameIdx && out[i].Box.IoU(o.Box) > 0.8 {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, o)
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
