package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/ann"
	"repro/internal/mat"
	"repro/internal/query"
	"repro/internal/video"
)

// QueryOptions tune one query; zero values inherit the system Config.
type QueryOptions struct {
	// FastK overrides the fast-search candidate count.
	FastK int
	// TopN overrides the number of reranked frames returned.
	TopN int
	// DisableRerank skips stage 2 ("w/o Rerank" ablation): fast-search
	// hits are returned directly.
	DisableRerank bool
	// Exhaustive disables ANNS pruning ("w/o ANNS" ablation).
	Exhaustive bool
	// RerankFrames overrides the stage-2 frame budget.
	RerankFrames int
	// Workers overrides the stage-2 rerank fan-out width for this query
	// (zero inherits Config.Workers, which defaults to runtime.NumCPU();
	// 1 forces the serial rerank). Output is identical at every setting.
	Workers int
}

// ResultObject is one retrieved object.
type ResultObject struct {
	// VideoID and FrameIdx locate the keyframe.
	VideoID  int
	FrameIdx int
	// Box is the object's bounding box.
	Box video.Box
	// Score is the ranking score (cross-modality score after rerank,
	// fast-search similarity otherwise).
	Score float32
	// PatchID is the vector-database key that produced the candidate
	// (zero for rerank-promoted objects that had no direct hit).
	PatchID int64
}

// Result is a ranked answer with stage timings.
type Result struct {
	// Objects is the ranked object list (frames with bounding boxes).
	Objects []ResultObject
	// FastSearch is the stage-1 latency (encode + ANNS + metadata join).
	FastSearch time.Duration
	// Rerank is the stage-2 latency.
	Rerank time.Duration
	// CandidateFrames is the number of distinct frames sent to rerank.
	CandidateFrames int
}

// Total returns the user-perceived search latency.
func (r *Result) Total() time.Duration { return r.FastSearch + r.Rerank }

// Query executes the two-stage strategy of Algorithm 2.
func (s *System) Query(text string, opts QueryOptions) (*Result, error) {
	fastK := opts.FastK
	if fastK == 0 {
		fastK = s.cfg.FastK
	}
	topN := opts.TopN
	if topN == 0 {
		topN = s.cfg.TopN
	}

	res := &Result{}
	start := time.Now()

	// Stage 1: encode the query and fast-search the index.
	parsed := query.Parse(text)
	qvec := s.text.FastVec(parsed)
	if mat.Norm(qvec) == 0 {
		return nil, fmt.Errorf("core: query %q contains no recognised terms", text)
	}
	qproj := s.space.Project(qvec)
	hits, err := s.searchVectors(qproj, fastK, ann.Params{
		NProbe:     s.cfg.NProbe,
		Ef:         s.cfg.Ef,
		Exhaustive: opts.Exhaustive,
	})
	if err != nil {
		return nil, fmt.Errorf("core: fast search: %w", err)
	}

	// Join hits against the relational store and collect candidate
	// frames in first-hit (best-score) order.
	type candidate struct {
		key  frameKey
		best mat.Scored
	}
	var frameOrder []candidate
	seen := make(map[frameKey]bool)
	fastObjects := make([]ResultObject, 0, len(hits))
	for _, h := range hits {
		row, err := s.patches.Get(h.ID)
		if err != nil {
			return nil, fmt.Errorf("core: metadata join for patch %d: %w", h.ID, err)
		}
		vid := int(row[1].(int64))
		fi := int(row[2].(int64))
		box := video.Box{X: row[4].(float64), Y: row[5].(float64), W: row[6].(float64), H: row[7].(float64)}
		fastObjects = append(fastObjects, ResultObject{
			VideoID: vid, FrameIdx: fi, Box: box, Score: h.Score, PatchID: h.ID,
		})
		k := frameKey{vid, fi}
		if !seen[k] {
			seen[k] = true
			frameOrder = append(frameOrder, candidate{key: k, best: h})
		}
	}
	res.FastSearch = time.Since(start)
	res.CandidateFrames = len(frameOrder)

	if opts.DisableRerank {
		res.Objects = truncateObjects(dedupByFrameBox(fastObjects), fastK)
		return res, nil
	}

	// Stage 2: cross-modality rerank over the candidate frames, bounded
	// by the rerank budget so its cost stays independent of dataset
	// size (Section VII-D). The budget is spent on temporally diverse
	// moments: adjacent keyframes almost surely show the same objects,
	// so a candidate within a few frames of an already-selected one is
	// deferred until the distinct moments are exhausted.
	rerankFrames := opts.RerankFrames
	if rerankFrames == 0 {
		rerankFrames = s.cfg.RerankFrames
	}
	if len(frameOrder) > rerankFrames {
		const spacing = 4
		selected := make([]candidate, 0, rerankFrames)
		var deferred []candidate
		for _, cand := range frameOrder {
			close := false
			for _, sel := range selected {
				if sel.key.video == cand.key.video && abs(sel.key.frame-cand.key.frame) <= spacing {
					close = true
					break
				}
			}
			if close {
				deferred = append(deferred, cand)
				continue
			}
			selected = append(selected, cand)
			if len(selected) == rerankFrames {
				break
			}
		}
		for _, cand := range deferred {
			if len(selected) == rerankFrames {
				break
			}
			selected = append(selected, cand)
		}
		frameOrder = selected
	}
	rstart := time.Now()
	toks := s.text.Tokens(parsed)
	workers := opts.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	// Each candidate frame grounds independently, so the transformer
	// forward passes — the dominant cost of Algorithm 2 — fan out across
	// the worker pool. Per-candidate outputs land in a slot indexed by
	// candidate position and merge in that order below, so the reranked
	// list and frame-best map are byte-identical to the serial loop.
	type rerankSlot struct {
		objs    []ResultObject
		best    float32
		grounds bool
	}
	slots := make([]rerankSlot, len(frameOrder))
	parallelFor(len(frameOrder), resolveWorkers(workers), func(i int) {
		cand := frameOrder[i]
		f, ok := s.Keyframe(cand.key.video, cand.key.frame)
		if !ok {
			return
		}
		groundings := s.model.GroundFrame(f, toks)
		for gi, g := range groundings {
			// Beyond the best grounding, a frame contributes
			// further objects only while they form a plateau of
			// near-equal scores (several pedestrians all walking,
			// both cars of a side-by-side pair); a clear drop
			// means the remaining objects don't match and would
			// only inject false positives.
			if gi >= 4 || (gi > 0 && g.Score < groundings[gi-1].Score-0.02) {
				break
			}
			slots[i].objs = append(slots[i].objs, ResultObject{
				VideoID:  cand.key.video,
				FrameIdx: cand.key.frame,
				Box:      g.Box,
				Score:    g.Score,
				PatchID:  cand.best.ID,
			})
		}
		if len(groundings) > 0 {
			slots[i].best = groundings[0].Score
			slots[i].grounds = true
		}
	})
	var reranked []ResultObject
	frameBest := make(map[frameKey]float32)
	for i, cand := range frameOrder {
		reranked = append(reranked, slots[i].objs...)
		if slots[i].grounds {
			frameBest[cand.key] = slots[i].best
		}
	}
	// Rank frames by their best grounding, keep the top-n frames, then
	// rank objects within (Algorithm 2 returns top-n frames with boxes).
	type fs struct {
		key   frameKey
		score float32
	}
	ranked := make([]fs, 0, len(frameBest))
	for k, v := range frameBest {
		ranked = append(ranked, fs{k, v})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		if ranked[i].key.video != ranked[j].key.video {
			return ranked[i].key.video < ranked[j].key.video
		}
		return ranked[i].key.frame < ranked[j].key.frame
	})
	keep := make(map[frameKey]bool)
	for i := 0; i < len(ranked) && i < topN; i++ {
		keep[ranked[i].key] = true
	}
	var kept []ResultObject
	for _, o := range reranked {
		if keep[frameKey{o.VideoID, o.FrameIdx}] {
			kept = append(kept, o)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Score != kept[j].Score {
			return kept[i].Score > kept[j].Score
		}
		if kept[i].VideoID != kept[j].VideoID {
			return kept[i].VideoID < kept[j].VideoID
		}
		return kept[i].FrameIdx < kept[j].FrameIdx
	})
	res.Objects = kept
	res.Rerank = time.Since(rstart)
	return res, nil
}

// QueryBatch answers many queries concurrently across at most clients
// goroutines (zero inherits Config.Workers, which defaults to
// runtime.NumCPU()). Results align with texts; each result is identical to
// what a lone Query call would return. The first failing query (lowest
// index) aborts the batch with its error once in-flight queries drain.
//
// QueryBatch is the concurrent-clients surface: it is safe to call from
// many goroutines and while ingest continues on another goroutine.
func (s *System) QueryBatch(texts []string, opts QueryOptions, clients int) ([]*Result, error) {
	if clients == 0 {
		clients = s.cfg.Workers
	}
	clients = resolveWorkers(clients)
	// Batch-level concurrency already saturates the cores, so unless the
	// caller explicitly widened the per-query rerank, run each query's
	// stage 2 serially — nested NumCPU-wide pools would oversubscribe
	// the CPU with no throughput to show for it. Results are identical
	// at every width.
	if opts.Workers == 0 && clients > 1 {
		opts.Workers = 1
	}
	results := make([]*Result, len(texts))
	errs := make([]error, len(texts))
	parallelFor(len(texts), clients, func(i int) {
		results[i], errs[i] = s.Query(texts[i], opts)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: batch query %d (%q): %w", i, texts[i], err)
		}
	}
	return results, nil
}

// dedupByFrameBox removes near-duplicate fast-search hits: multiple patches
// of one object predict nearly identical boxes, which would otherwise flood
// the un-reranked result list.
func dedupByFrameBox(objs []ResultObject) []ResultObject {
	var out []ResultObject
	for _, o := range objs {
		dup := false
		for i := range out {
			if out[i].VideoID == o.VideoID && out[i].FrameIdx == o.FrameIdx && out[i].Box.IoU(o.Box) > 0.8 {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, o)
		}
	}
	return out
}

func truncateObjects(objs []ResultObject, n int) []ResultObject {
	if len(objs) > n {
		return objs[:n]
	}
	return objs
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
