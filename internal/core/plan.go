package core

import (
	"fmt"
	"strings"
)

// PlanKind records how a plan was chosen — fixed defaults, caller-pinned,
// or planner-adapted. It is reporting provenance only: two plans with equal
// execution fields produce the same bytes regardless of kind.
type PlanKind string

const (
	// PlanFixed is the default path: the resolved Config knobs, exactly as
	// every query ran before the planner existed.
	PlanFixed PlanKind = "fixed"
	// PlanPinned is a caller-supplied explicit plan (QueryOptions.Plan).
	PlanPinned PlanKind = "pinned"
	// PlanAdaptive is a planner-chosen approximate plan predicted to meet
	// the caller's MinRecall bound.
	PlanAdaptive PlanKind = "adaptive"
	// PlanAdaptiveExact is the planner's escalation: no calibrated setting
	// is predicted to meet the bound (or no calibration data exists yet),
	// so stage 1 runs exhaustively — recall 1 by construction.
	PlanAdaptiveExact PlanKind = "adaptive-exact"
)

// Plan is an explicit, executable description of one query's two-stage
// strategy: how wide stage 1 searches (exact vs approximate, per-shard k,
// index effort knobs) and how wide stage 2 reranks. The shared executor
// (ExecutePlan) runs a plan identically whether the stage legs are served
// in-process, by a scatter-gather engine, or over RPC — equal plans yield
// byte-identical answers on every deployment shape, which is what lets a
// pinned plan be cached, replayed and conformance-tested.
//
// Zero execution fields are resolved against the system Config by
// Config.NormalizePlan before execution or cache keying.
type Plan struct {
	// Exact disables ANN pruning: stage 1 scans the whole collection
	// (recall 1 by construction). NProbe/Ef are ignored when set.
	Exact bool
	// FastK is the global stage-1 candidate pool: the merged hit list is
	// truncated to this many patches before stage 2.
	FastK int
	// ShardK is the per-leg stage-1 depth: how many local hits one shard
	// returns. A single system and a conservative engine use ShardK ==
	// FastK (which reproduces the exact global top-FastK under exact
	// per-shard search); the planner may trim low-yield shards below it.
	ShardK int
	// ShardKs, when non-nil, gives each shard leg its own stage-1 depth
	// (heterogeneous per-shard k, engine-resolved plans only). Leg i runs
	// with ShardK = ShardKs[i]; nil means every leg uses ShardK.
	ShardKs []int
	// NProbe is the per-subspace probe count for IMI/IVF-PQ stage-1 search.
	NProbe int
	// Ef is the HNSW search beam width.
	Ef int
	// RerankFrames is the stage-2 candidate-frame budget.
	RerankFrames int
	// TopN is the number of reranked frames returned.
	TopN int
	// SkipRerank returns deduplicated stage-1 hits directly (the
	// "w/o Rerank" ablation path).
	SkipRerank bool
	// Int8 routes stage 1 through the int8-quantized scoring path on
	// indexes that support it (flat, IVF-PQ): candidates are scanned via
	// symmetric per-vector int8 codes and the shortlist is re-scored
	// exactly. Unlike the float32 kernel tiers this path is recall-gated,
	// not bit-identical, so only the planner (backed by calibration
	// measurements against exact ground truth) or an explicit pinned plan
	// may set it. Ignored when Exact is set: exhaustive stage 1 is exact
	// by contract.
	Int8 bool

	// Kind records how the plan was chosen (reporting only).
	Kind PlanKind
	// PredictedRecall is the planner's calibrated stage-1 recall estimate
	// against the exact top-FastK (0 when not predicted: fixed and pinned
	// plans make no claim; exact plans predict 1).
	PredictedRecall float64
}

// FixedPlan resolves the pre-planner query path for the receiver Config
// (which must be resolved, see Config.Resolved) and the per-query option
// overrides: the exact knobs every query ran with before plans existed.
// The no-bound default resolves here, so it is byte-identical to the old
// fixed path by construction.
func (c Config) FixedPlan(opts QueryOptions) Plan {
	p := Plan{
		Exact:        opts.Exhaustive,
		FastK:        opts.FastK,
		NProbe:       c.NProbe,
		Ef:           c.Ef,
		RerankFrames: opts.RerankFrames,
		TopN:         opts.TopN,
		SkipRerank:   opts.DisableRerank,
		Int8:         opts.Int8 && !opts.Exhaustive,
		Kind:         PlanFixed,
	}
	if p.FastK == 0 {
		p.FastK = c.FastK
	}
	if p.TopN == 0 {
		p.TopN = c.TopN
	}
	if p.RerankFrames == 0 {
		p.RerankFrames = c.RerankFrames
	}
	p.ShardK = p.FastK
	return p
}

// NormalizePlan fills a (possibly partial) pinned plan's zero fields from
// the resolved Config defaults, so callers may pin only the knobs they care
// about. The normalized plan is what executes — and what the result cache
// keys on.
func (c Config) NormalizePlan(p Plan) Plan {
	if p.FastK <= 0 {
		p.FastK = c.FastK
	}
	if p.ShardK <= 0 {
		p.ShardK = p.FastK
	}
	if p.NProbe <= 0 {
		p.NProbe = c.NProbe
	}
	if p.Ef <= 0 {
		p.Ef = c.Ef
	}
	if p.RerankFrames <= 0 {
		p.RerankFrames = c.RerankFrames
	}
	if p.TopN <= 0 {
		p.TopN = c.TopN
	}
	if p.Kind == "" {
		p.Kind = PlanPinned
	}
	return p
}

// Leg derives the plan one shard leg executes: the same global plan with
// the leg's own stage-1 depth and the engine-only ShardKs slice stripped
// (it never travels the wire).
func (p Plan) Leg(i int) Plan {
	leg := p
	if p.ShardKs != nil && i >= 0 && i < len(p.ShardKs) {
		leg.ShardK = p.ShardKs[i]
	}
	leg.ShardKs = nil
	return leg
}

// Key canonicalises the plan's execution fields for result-cache keying.
// Provenance fields (Kind, PredictedRecall) are excluded: they never change
// the answer bytes, so a pinned plan and an adaptive plan that resolved to
// the same knobs share one cache entry.
func (p Plan) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "x=%t k=%d sk=%d np=%d ef=%d rr=%d n=%d sr=%t i8=%t",
		p.Exact, p.FastK, p.ShardK, p.NProbe, p.Ef, p.RerankFrames, p.TopN, p.SkipRerank, p.Int8)
	if p.ShardKs != nil {
		sb.WriteString(" sks=")
		for i, k := range p.ShardKs {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", k)
		}
	}
	return sb.String()
}

// String renders the plan for logs and /stats.
func (p Plan) String() string {
	kind := p.Kind
	if kind == "" {
		kind = PlanFixed
	}
	if p.Exact {
		return fmt.Sprintf("%s exact k=%d rerank=%d top=%d", kind, p.FastK, p.RerankFrames, p.TopN)
	}
	if p.Int8 {
		return fmt.Sprintf("%s k=%d shardk=%d nprobe=%d ef=%d int8 rerank=%d top=%d",
			kind, p.FastK, p.ShardK, p.NProbe, p.Ef, p.RerankFrames, p.TopN)
	}
	return fmt.Sprintf("%s k=%d shardk=%d nprobe=%d ef=%d rerank=%d top=%d",
		kind, p.FastK, p.ShardK, p.NProbe, p.Ef, p.RerankFrames, p.TopN)
}
