package core

import "time"

// PlanTarget is the deployment surface a plan executes against: something
// that can scatter stage 1 and stage 2. A single System is a one-leg
// target; shard.Engine is an N-leg target whose stage-2 refs route to the
// shard owning each keyframe; RPC workers sit behind either leg
// transparently. ExecutePlan is the only composition of the stage
// functions — core, engine and remote all answer through it, so equal
// plans produce equal bytes on every deployment shape.
type PlanTarget interface {
	// ScatterSearch runs stage 1 on every leg, returning one canonical
	// (score desc, patch ID asc) hit list per leg.
	ScatterSearch(text string, plan Plan) ([][]ResultObject, error)
	// ScatterGround runs stage 2 over the candidate frames; groundings
	// align with refs.
	ScatterGround(text string, refs []FrameRef, workers int) ([]Grounding, error)
}

// ExecutePlan runs Algorithm 2 under an explicit plan: scatter fast search,
// merge to the global top-FastK, collapse to candidate frames, then either
// return deduplicated hits (SkipRerank) or select the rerank budget, ground
// each candidate and rank. workers bounds the stage-2 fan-out (zero
// inherits the target's configuration); results are identical at every
// width.
func ExecutePlan(t PlanTarget, text string, plan Plan, workers int) (*Result, error) {
	res := &Result{}
	start := time.Now()
	lists, err := t.ScatterSearch(text, plan)
	if err != nil {
		return nil, err
	}
	merged := MergeHits(lists, plan.FastK)
	refs := CandidateFrames(merged)
	res.CandidateFrames = len(refs)
	res.FastSearch = time.Since(start)

	if plan.SkipRerank {
		res.Objects = DedupHits(merged, plan.FastK)
		return res, nil
	}

	rstart := time.Now()
	refs = SelectForRerank(refs, plan.RerankFrames)
	groundings, err := t.ScatterGround(text, refs, workers)
	if err != nil {
		return nil, err
	}
	res.Objects = RankGroundings(groundings, plan.TopN)
	res.Rerank = time.Since(rstart)
	return res, nil
}

// systemTarget adapts a System to the one-leg PlanTarget.
type systemTarget struct{ s *System }

func (t systemTarget) ScatterSearch(text string, plan Plan) ([][]ResultObject, error) {
	fh, err := t.s.SearchPlanned(text, plan)
	if err != nil {
		return nil, err
	}
	return [][]ResultObject{fh.Objects}, nil
}

func (t systemTarget) ScatterGround(text string, refs []FrameRef, workers int) ([]Grounding, error) {
	return t.s.GroundCandidates(text, refs, workers), nil
}
