package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/obs"
)

// PlanTarget is the deployment surface a plan executes against: something
// that can scatter stage 1 and stage 2. A single System is a one-leg
// target; shard.Engine is an N-leg target whose stage-2 refs route to the
// shard owning each keyframe; RPC workers sit behind either leg
// transparently. ExecutePlan is the only composition of the stage
// functions — core, engine and remote all answer through it, so equal
// plans produce equal bytes on every deployment shape.
//
// The context carries the tracing recorder (see internal/obs) — targets
// thread it into every leg so per-shard and per-replica spans land in the
// query's trace. It carries no cancellation semantics here: plans run to
// completion for determinism.
type PlanTarget interface {
	// ScatterSearch runs stage 1 on every leg, returning one canonical
	// (score desc, patch ID asc) hit list per leg.
	ScatterSearch(ctx context.Context, text string, plan Plan) ([][]ResultObject, error)
	// ScatterGround runs stage 2 over the candidate frames; groundings
	// align with refs.
	ScatterGround(ctx context.Context, text string, refs []FrameRef, workers int) ([]Grounding, error)
}

// ExecutePlan runs Algorithm 2 under an explicit plan: scatter fast search,
// merge to the global top-FastK, collapse to candidate frames, then either
// return deduplicated hits (SkipRerank) or select the rerank budget, ground
// each candidate and rank. workers bounds the stage-2 fan-out (zero
// inherits the target's configuration); results are identical at every
// width — and at every tracing setting: spans observe, never steer.
func ExecutePlan(ctx context.Context, t PlanTarget, text string, plan Plan, workers int) (*Result, error) {
	res := &Result{}
	//lovo:nondeterministic-ok Result.FastSearch is reported stage latency; hit selection and order never read it
	start := time.Now()
	sctx, ssp := obs.Start(ctx, "stage1")
	lists, err := t.ScatterSearch(sctx, text, plan)
	if err != nil {
		ssp.End()
		return nil, err
	}
	_, msp := obs.Start(sctx, "merge")
	merged := MergeHits(lists, plan.FastK)
	refs := CandidateFrames(merged)
	if msp.On() {
		msp.Detail(fmt.Sprintf("legs=%d hits=%d frames=%d", len(lists), len(merged), len(refs)))
	}
	msp.End()
	ssp.End()
	res.CandidateFrames = len(refs)
	//lovo:nondeterministic-ok Result.FastSearch is reported stage latency; hit selection and order never read it
	res.FastSearch = time.Since(start)

	if plan.SkipRerank {
		res.Objects = DedupHits(merged, plan.FastK)
		return res, nil
	}

	//lovo:nondeterministic-ok Result.Rerank is reported stage latency; grounding ranks never read it
	rstart := time.Now()
	rctx, rsp := obs.Start(ctx, "rerank")
	refs = SelectForRerank(refs, plan.RerankFrames)
	if rsp.On() {
		rsp.Detail(fmt.Sprintf("frames=%d", len(refs)))
	}
	groundings, err := t.ScatterGround(rctx, text, refs, workers)
	if err != nil {
		rsp.End()
		return nil, err
	}
	res.Objects = RankGroundings(groundings, plan.TopN)
	rsp.End()
	//lovo:nondeterministic-ok Result.Rerank is reported stage latency; grounding ranks never read it
	res.Rerank = time.Since(rstart)
	return res, nil
}

// systemTarget adapts a System to the one-leg PlanTarget.
type systemTarget struct{ s *System }

func (t systemTarget) ScatterSearch(ctx context.Context, text string, plan Plan) ([][]ResultObject, error) {
	fh, err := t.s.SearchPlanned(ctx, text, plan)
	if err != nil {
		return nil, err
	}
	return [][]ResultObject{fh.Objects}, nil
}

func (t systemTarget) ScatterGround(ctx context.Context, text string, refs []FrameRef, workers int) ([]Grounding, error) {
	return t.s.GroundCandidates(ctx, text, refs, workers), nil
}
