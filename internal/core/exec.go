package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/obs"
)

// PlanTarget is the deployment surface a plan executes against: something
// that can scatter stage 1 and stage 2. A single System is a one-leg
// target; shard.Engine is an N-leg target whose stage-2 refs route to the
// shard owning each keyframe; RPC workers sit behind either leg
// transparently. ExecutePlan is the only composition of the stage
// functions — core, engine and remote all answer through it, so equal
// plans produce equal bytes on every deployment shape.
//
// The context carries the tracing recorder (see internal/obs) — targets
// thread it into every leg so per-shard and per-replica spans land in the
// query's trace. It carries no cancellation semantics here: plans run to
// completion for determinism.
type PlanTarget interface {
	// ScatterSearch runs stage 1 on every leg, returning one canonical
	// (score desc, patch ID asc) hit list per leg.
	ScatterSearch(ctx context.Context, text string, plan Plan) ([][]ResultObject, error)
	// ScatterGround runs stage 2 over the candidate frames; groundings
	// align with refs.
	ScatterGround(ctx context.Context, text string, refs []FrameRef, workers int) ([]Grounding, error)
}

// ExecutePlan runs Algorithm 2 under an explicit plan: scatter fast search,
// merge to the global top-FastK, collapse to candidate frames, then either
// return deduplicated hits (SkipRerank) or select the rerank budget, ground
// each candidate and rank. workers bounds the stage-2 fan-out (zero
// inherits the target's configuration); results are identical at every
// width — and at every tracing setting: spans observe, never steer.
func ExecutePlan(ctx context.Context, t PlanTarget, text string, plan Plan, workers int) (*Result, error) {
	res := &Result{}
	//lovo:nondeterministic-ok Result.FastSearch is reported stage latency; hit selection and order never read it
	start := time.Now()
	sctx, ssp := obs.Start(ctx, "stage1")
	lists, err := t.ScatterSearch(sctx, text, plan)
	if err != nil {
		ssp.End()
		return nil, err
	}
	_, msp := obs.Start(sctx, "merge")
	merged := MergeHits(lists, plan.FastK)
	refs := CandidateFrames(merged)
	if msp.On() {
		msp.Detail(fmt.Sprintf("legs=%d hits=%d frames=%d", len(lists), len(merged), len(refs)))
	}
	msp.End()
	ssp.End()
	res.CandidateFrames = len(refs)
	//lovo:nondeterministic-ok Result.FastSearch is reported stage latency; hit selection and order never read it
	res.FastSearch = time.Since(start)

	if plan.SkipRerank {
		res.Objects = DedupHits(merged, plan.FastK)
		return res, nil
	}

	//lovo:nondeterministic-ok Result.Rerank is reported stage latency; grounding ranks never read it
	rstart := time.Now()
	rctx, rsp := obs.Start(ctx, "rerank")
	refs = SelectForRerank(refs, plan.RerankFrames)
	if rsp.On() {
		rsp.Detail(fmt.Sprintf("frames=%d", len(refs)))
	}
	groundings, err := t.ScatterGround(rctx, text, refs, workers)
	if err != nil {
		rsp.End()
		return nil, err
	}
	res.Objects = RankGroundings(groundings, plan.TopN)
	rsp.End()
	//lovo:nondeterministic-ok Result.Rerank is reported stage latency; grounding ranks never read it
	res.Rerank = time.Since(rstart)
	return res, nil
}

// BatchTarget is the optional batched stage-1 surface a PlanTarget may
// implement: scatter stage 1 for MANY queries in one call, so the target can
// amortize one memory sweep across the whole batch (flat scans score every
// query per cache-resident block; shard engines issue one scatter round-trip
// per backend instead of one per query). Per-query results must be
// bit-identical to per-query ScatterSearch calls.
type BatchTarget interface {
	PlanTarget
	// ScatterSearchBatch runs stage 1 for every (text, plan) pair;
	// out[i][leg] is query i's canonical hit list from that leg.
	ScatterSearchBatch(ctx context.Context, texts []string, plans []Plan) ([][][]ResultObject, error)
}

// ExecutePlanBatch runs one pre-resolved plan per query against the target.
// When the target implements BatchTarget, stage 1 for the WHOLE batch is one
// scatter call — queries with identical search shapes share a single memory
// sweep — and only stage 2 (rerank) fans out per query across at most
// clients goroutines. Otherwise each query runs the full ExecutePlan
// composition concurrently. Results align with texts and are bit-identical
// to per-query ExecutePlan runs; the first failing query (lowest index)
// reports its error once in-flight work drains.
func ExecutePlanBatch(ctx context.Context, t PlanTarget, texts []string, plans []Plan, workers, clients int) ([]*Result, error) {
	if len(plans) != len(texts) {
		return nil, fmt.Errorf("core: batch of %d texts given %d plans", len(texts), len(plans))
	}
	results := make([]*Result, len(texts))
	errs := make([]error, len(texts))
	bt, ok := t.(BatchTarget)
	if !ok {
		ParallelFor(len(texts), clients, func(i int) {
			results[i], errs[i] = ExecutePlan(ctx, t, texts[i], plans[i], workers)
		})
		return firstBatchError(results, errs, texts)
	}

	//lovo:nondeterministic-ok Result.FastSearch is reported stage latency; hit selection and order never read it
	start := time.Now()
	sctx, ssp := obs.Start(ctx, "stage1")
	allLists, err := bt.ScatterSearchBatch(sctx, texts, plans)
	if err != nil {
		ssp.End()
		return nil, err
	}
	_, msp := obs.Start(sctx, "merge")
	merged := make([][]ResultObject, len(texts))
	refs := make([][]FrameRef, len(texts))
	for i := range texts {
		merged[i] = MergeHits(allLists[i], plans[i].FastK)
		refs[i] = CandidateFrames(merged[i])
	}
	if msp.On() {
		msp.Detail(fmt.Sprintf("queries=%d", len(texts)))
	}
	msp.End()
	ssp.End()
	//lovo:nondeterministic-ok Result.FastSearch is reported stage latency; hit selection and order never read it
	fastElapsed := time.Since(start)

	// Stage 2 is per-query work (transformer forward passes over each
	// query's own candidate frames), so it fans out across the batch like
	// the unbatched path.
	ParallelFor(len(texts), clients, func(i int) {
		res := &Result{CandidateFrames: len(refs[i]), FastSearch: fastElapsed}
		if plans[i].SkipRerank {
			res.Objects = DedupHits(merged[i], plans[i].FastK)
			results[i] = res
			return
		}
		//lovo:nondeterministic-ok Result.Rerank is reported stage latency; grounding ranks never read it
		rstart := time.Now()
		rctx, rsp := obs.Start(ctx, "rerank")
		sel := SelectForRerank(refs[i], plans[i].RerankFrames)
		if rsp.On() {
			rsp.Detail(fmt.Sprintf("frames=%d", len(sel)))
		}
		groundings, err := t.ScatterGround(rctx, texts[i], sel, workers)
		if err != nil {
			rsp.End()
			errs[i] = err
			return
		}
		res.Objects = RankGroundings(groundings, plans[i].TopN)
		rsp.End()
		//lovo:nondeterministic-ok Result.Rerank is reported stage latency; grounding ranks never read it
		res.Rerank = time.Since(rstart)
		results[i] = res
	})
	return firstBatchError(results, errs, texts)
}

// firstBatchError reports the lowest-index failing query of a batch, or the
// aligned results when every query succeeded.
func firstBatchError(results []*Result, errs []error, texts []string) ([]*Result, error) {
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: batch query %d (%q): %w", i, texts[i], err)
		}
	}
	return results, nil
}

// systemTarget adapts a System to the one-leg PlanTarget.
type systemTarget struct{ s *System }

func (t systemTarget) ScatterSearch(ctx context.Context, text string, plan Plan) ([][]ResultObject, error) {
	fh, err := t.s.SearchPlanned(ctx, text, plan)
	if err != nil {
		return nil, err
	}
	return [][]ResultObject{fh.Objects}, nil
}

func (t systemTarget) ScatterSearchBatch(ctx context.Context, texts []string, plans []Plan) ([][][]ResultObject, error) {
	fhs, err := t.s.SearchPlannedBatch(ctx, texts, plans)
	if err != nil {
		return nil, err
	}
	out := make([][][]ResultObject, len(fhs))
	for i, fh := range fhs {
		out[i] = [][]ResultObject{fh.Objects}
	}
	return out, nil
}

func (t systemTarget) ScatterGround(ctx context.Context, text string, refs []FrameRef, workers int) ([]Grounding, error) {
	return t.s.GroundCandidates(ctx, text, refs, workers), nil
}
