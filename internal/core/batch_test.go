package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/vectordb"
)

// batchPlans builds a deliberately heterogeneous plan set: mixed FastK,
// exhaustive, and (on int8-capable kinds) pinned int8 plans, so the batch
// groups into several distinct search shapes rather than one.
func batchPlans(sys *System, texts []string, kind vectordb.IndexKind) []Plan {
	plans := make([]Plan, len(texts))
	for i := range texts {
		opts := QueryOptions{}
		switch i % 3 {
		case 1:
			opts.FastK = 24
		case 2:
			if kind == vectordb.IndexFlat || kind == vectordb.IndexIVFPQ {
				opts.Int8 = true
			} else {
				opts.Exhaustive = true
			}
		}
		plans[i] = sys.cfg.FixedPlan(opts)
	}
	return plans
}

// TestQueryBatchPlannedMatchesLoneQueries is the batch-path pin: batched
// execution — one grouped memory sweep per distinct search shape — must
// answer bit-identically to running every plan through QueryPlanned on its
// own, on both a batch-capable index (flat) and the per-query fallback
// (IMI).
func TestQueryBatchPlannedMatchesLoneQueries(t *testing.T) {
	for _, kind := range []vectordb.IndexKind{vectordb.IndexFlat, vectordb.IndexIMI} {
		t.Run(string(kind), func(t *testing.T) {
			sys, ds := plannerSystem(t, kind)
			var texts []string
			for _, q := range ds.Queries {
				texts = append(texts, q.Text)
				if len(texts) == 6 {
					break
				}
			}
			plans := batchPlans(sys, texts, kind)
			batch, err := sys.QueryBatchPlanned(context.Background(), texts, plans, 0, 4)
			if err != nil {
				t.Fatal(err)
			}
			for i, text := range texts {
				lone, err := sys.QueryPlanned(context.Background(), text, plans[i], 0)
				if err != nil {
					t.Fatalf("%q: %v", text, err)
				}
				if !reflect.DeepEqual(batch[i].Objects, lone.Objects) {
					t.Errorf("%q under plan %s: batch answers diverge from lone QueryPlanned", text, plans[i])
				}
			}
		})
	}
}

// TestSearchPlannedBatchGroups pins the stage-1 grouping layer directly:
// every query's FastHits from one batched call must carry the same objects
// as its own SearchPlanned call, across a plan set that spans several
// (k, params) groups.
func TestSearchPlannedBatchGroups(t *testing.T) {
	sys, ds := plannerSystem(t, vectordb.IndexFlat)
	var texts []string
	for _, q := range ds.Queries {
		texts = append(texts, q.Text)
		if len(texts) == 5 {
			break
		}
	}
	plans := batchPlans(sys, texts, vectordb.IndexFlat)
	batched, err := sys.SearchPlannedBatch(context.Background(), texts, plans)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(texts) {
		t.Fatalf("batch returned %d results for %d queries", len(batched), len(texts))
	}
	for i, text := range texts {
		lone, err := sys.SearchPlanned(context.Background(), text, plans[i])
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		if !reflect.DeepEqual(batched[i].Objects, lone.Objects) {
			t.Errorf("%q under plan %s: batched stage-1 hits diverge", text, plans[i])
		}
	}
}

// TestSearchPlannedBatchRejectsUnknownTerms: a batch containing one
// unencodable query fails whole with the query identified, exactly like
// the lone path.
func TestSearchPlannedBatchRejectsUnknownTerms(t *testing.T) {
	sys, ds := plannerSystem(t, vectordb.IndexFlat)
	texts := []string{ds.Queries[0].Text, "zzz qqq xyzzy"}
	plans := []Plan{sys.cfg.FixedPlan(QueryOptions{}), sys.cfg.FixedPlan(QueryOptions{})}
	if _, err := sys.SearchPlannedBatch(context.Background(), texts, plans); err == nil {
		t.Fatal("batch with an unencodable query must fail")
	}
}

// TestPlannerInt8RecallGate pins the int8 rungs' contract on the
// int8-capable kinds: calibration must measure int8 rungs, an int8 rung
// chosen for a bounded query must deliver measured stage-1 recall at or
// above the bound, and escalation to exact always drops the int8 scorer.
func TestPlannerInt8RecallGate(t *testing.T) {
	kinds := []vectordb.IndexKind{vectordb.IndexFlat, vectordb.IndexIVFPQ}
	if testing.Short() {
		kinds = kinds[:1]
	}
	for _, kind := range kinds {
		t.Run(string(kind), func(t *testing.T) {
			sys, ds := plannerSystem(t, kind)
			st := sys.PlanStats()
			var int8Rungs int
			for _, r := range st.Rungs {
				if r.Int8 {
					int8Rungs++
				}
			}
			if int8Rungs == 0 {
				t.Fatalf("%s ladder has no int8 rungs: %+v", kind, st.Rungs)
			}

			const bound = 0.5
			var picked bool
			for _, q := range ds.Queries[:4] {
				plan, err := sys.PlanQuery(q.Text, QueryOptions{MinRecall: bound})
				if err != nil {
					t.Fatalf("%s: plan: %v", q.ID, err)
				}
				if !plan.Int8 {
					continue
				}
				picked = true
				rec, err := sys.StageRecall(q.Text, plan)
				if err != nil {
					t.Fatalf("%s: measuring recall: %v", q.ID, err)
				}
				if rec < bound {
					t.Errorf("%s: int8 plan %s measured recall %v below bound %v", q.ID, plan, rec, bound)
				}
			}
			if !picked {
				// The ladder carries int8 rungs but calibration measured them
				// under the loose bound — that means the quantizer underbid
				// on this corpus, which the gate exists to allow; log it so a
				// regression to "never viable" is visible.
				t.Logf("%s: no bounded query picked an int8 rung", kind)
			}

			// MinRecall=1 escalates to exact, which never scores int8 — even
			// when the caller pinned it.
			plan, err := sys.PlanQuery(ds.Queries[0].Text, QueryOptions{MinRecall: 1, Int8: true})
			if err != nil {
				t.Fatal(err)
			}
			if !plan.Exact || plan.Int8 {
				t.Fatalf("MinRecall=1 must plan exact float search, got %s", plan)
			}
		})
	}
}

// TestPinnedInt8PlanExecutes: QueryOptions.Int8 without a bound pins the
// fixed plan's int8 variant, and executing it returns exactly re-scored
// (finite, descending) results.
func TestPinnedInt8PlanExecutes(t *testing.T) {
	sys, ds := plannerSystem(t, vectordb.IndexFlat)
	plan, err := sys.PlanQuery(ds.Queries[0].Text, QueryOptions{Int8: true})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Int8 {
		t.Fatalf("pinned int8 options must yield an int8 plan, got %s", plan)
	}
	res, err := sys.QueryPlanned(context.Background(), ds.Queries[0].Text, plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) == 0 {
		t.Fatal("int8 plan returned no objects")
	}
	for i := 1; i < len(res.Objects); i++ {
		if res.Objects[i].Score > res.Objects[i-1].Score {
			t.Fatalf("int8 results not score-sorted at %d", i)
		}
	}
}
