package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/datasets"
)

func TestSystemSnapshotRoundTrip(t *testing.T) {
	cfg := Config{Seed: 17}
	ds := datasets.Bellevue(datasets.Config{Seed: 17, Scale: 0.05})
	orig := buildSystem(t, ds, cfg)

	var buf bytes.Buffer
	if err := orig.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Entities() != orig.Entities() {
		t.Fatalf("entities %d != %d", restored.Entities(), orig.Entities())
	}
	if !restored.Built() {
		t.Fatal("restored system must report built")
	}
	if restored.Stats() != orig.Stats() {
		t.Fatalf("stats %+v != %+v", restored.Stats(), orig.Stats())
	}

	// Every benchmark query answers byte-identically — vectors, metadata
	// join and keyframes all survived the round trip.
	for _, q := range ds.Queries {
		want, err := orig.Query(q.Text, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Query(q.Text, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Objects, want.Objects) {
			t.Fatalf("%s: restored system answers diverge\n got: %+v\nwant: %+v", q.ID, got.Objects, want.Objects)
		}
	}

	// The restored system keeps working: more footage, rebuild, query.
	extra := datasets.Bellevue(datasets.Config{Seed: 18, Scale: 0.03})
	v := extra.Videos[0]
	v.ID = 7
	if err := restored.Ingest(&v); err != nil {
		t.Fatal(err)
	}
	if err := restored.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Query(ds.Queries[0].Text, QueryOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamingSnapshotRoundTrip pins the streaming save/load path the
// monolithic round trip cannot cover: a snapshot taken mid-stream (sealed
// segments plus a non-empty growing segment) restores a system that
// answers byte-identically and keeps streaming.
func TestStreamingSnapshotRoundTrip(t *testing.T) {
	cfg := Config{Seed: 17, Streaming: true, SegmentSize: 400}
	ds := datasets.Bellevue(datasets.Config{Seed: 17, Scale: 0.05})
	orig, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Videos {
		if err := orig.Ingest(&ds.Videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := orig.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	// Keep streaming past the build so the snapshot catches a growing
	// segment mid-stream.
	extra := datasets.Bellevue(datasets.Config{Seed: 18, Scale: 0.03})
	v := extra.Videos[0]
	v.ID = 7
	if err := orig.Ingest(&v); err != nil {
		t.Fatal(err)
	}
	if st, ok := orig.SegmentStats(); !ok || st.Sealed == 0 {
		t.Fatalf("expected sealed segments before save, got %+v", st)
	}

	var buf bytes.Buffer
	if err := orig.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Entities() != orig.Entities() {
		t.Fatalf("entities %d != %d", restored.Entities(), orig.Entities())
	}
	if st, ok := restored.SegmentStats(); !ok || st.Sealed == 0 || st.GrowingLen == 0 {
		t.Fatalf("restored segment stats = %+v", st)
	}
	for _, q := range ds.Queries {
		want, err := orig.Query(q.Text, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Query(q.Text, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Objects, want.Objects) {
			t.Fatalf("%s: restored streaming system answers diverge\n got: %+v\nwant: %+v", q.ID, got.Objects, want.Objects)
		}
	}
	// The restored system keeps streaming: more footage seals more
	// segments without a full rebuild.
	v2 := extra.Videos[len(extra.Videos)-1]
	v2.ID = 8
	if err := restored.Ingest(&v2); err != nil {
		t.Fatal(err)
	}
	if err := restored.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Query(ds.Queries[0].Text, QueryOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestSystemSnapshotErrors(t *testing.T) {
	// A snapshot's streaming-ness must match the restoring system: the two
	// store layouts answer approximate queries from differently seeded
	// indexes.
	s, err := New(Config{Seed: 1, Streaming: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.SaveSnapshot(&buf); err != nil {
		t.Fatalf("streaming save: %v", err)
	}
	mono, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := mono.LoadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("streaming snapshot into a monolithic system must error")
	}
	buf.Reset()
	monoSrc, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := monoSrc.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	stream, err := New(Config{Seed: 1, Streaming: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.LoadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("monolithic snapshot into a streaming system must error")
	}
	buf.Reset()

	// Bad magic.
	m, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadSnapshot(bytes.NewReader([]byte("NOTASNAP\n"))); err == nil {
		t.Fatal("bad magic must error")
	}

	// Dimension mismatch.
	ds := datasets.Bellevue(datasets.Config{Seed: 1, Scale: 0.03})
	orig := buildSystem(t, ds, Config{Seed: 1})
	buf.Reset()
	if err := orig.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	wrong, err := New(Config{Seed: 1, ProjDim: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := wrong.LoadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("dimension mismatch must error")
	}

	// Non-empty target.
	full := buildSystem(t, ds, Config{Seed: 1})
	if err := full.LoadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("loading into a non-empty system must error")
	}
}
