package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/datasets"
	"repro/internal/obs"
)

func tracedSystem(t testing.TB) (*System, *datasets.Dataset) {
	t.Helper()
	ds := datasets.QVHighlights(datasets.Config{Seed: 3, Scale: 0.04})
	sys, err := New(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Videos {
		if err := sys.Ingest(&ds.Videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	return sys, ds
}

// TestTracingDoesNotChangeAnswer pins bit-identity at the core layer: the
// same query traced and untraced returns identical objects and candidate
// counts — the spans only watch.
func TestTracingDoesNotChangeAnswer(t *testing.T) {
	sys, ds := tracedSystem(t)
	for _, q := range ds.Queries[:4] {
		want, err := sys.Query(q.Text, QueryOptions{})
		if err != nil {
			t.Fatalf("%s untraced: %v", q.ID, err)
		}
		tr := obs.NewTrace(obs.NewID())
		root := tr.Root("query")
		got, err := sys.QueryCtx(obs.With(context.Background(), root), q.Text, QueryOptions{})
		root.End()
		if err != nil {
			t.Fatalf("%s traced: %v", q.ID, err)
		}
		if !reflect.DeepEqual(got.Objects, want.Objects) || got.CandidateFrames != want.CandidateFrames {
			t.Fatalf("%s: tracing changed the answer", q.ID)
		}
		if len(tr.Export()) < 4 {
			t.Fatalf("%s: traced query recorded only %d spans", q.ID, len(tr.Export()))
		}
	}
}

// BenchmarkQueryTracingOff measures the full query hot path with tracing
// disabled — the default every caller pays; compare against
// BenchmarkQueryTracingOn for the opt-in overhead (the README quotes the
// pair).
func BenchmarkQueryTracingOff(b *testing.B) {
	sys, ds := tracedSystem(b)
	text := ds.Queries[0].Text
	plan, err := sys.PlanQuery(text, QueryOptions{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.QueryPlanned(ctx, text, plan, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryTracingOn is the same query with a live trace on the
// context, a fresh trace per iteration as the serving tier would do.
func BenchmarkQueryTracingOn(b *testing.B) {
	sys, ds := tracedSystem(b)
	text := ds.Queries[0].Text
	plan, err := sys.PlanQuery(text, QueryOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := obs.NewTrace(1)
		root := tr.Root("query")
		if _, err := sys.QueryPlanned(obs.With(context.Background(), root), text, plan, 1); err != nil {
			b.Fatal(err)
		}
		root.End()
	}
}
