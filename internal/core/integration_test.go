package core

import (
	"bytes"
	"testing"

	"repro/internal/ann"
	"repro/internal/datasets"
	"repro/internal/vectordb"
)

// TestEndToEndQVHighlights exercises the full pipeline on the multi-video,
// moving-camera workload with an in-car containment query.
func TestEndToEndQVHighlights(t *testing.T) {
	ds := datasets.QVHighlights(datasets.Config{Seed: 7, Scale: 0.12})
	s := buildSystem(t, ds, Config{Seed: 1})
	res, err := s.Query("A woman smiling sitting inside car.", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) == 0 {
		t.Fatal("no results")
	}
	// Top results must be smiling seated women, verified against scene
	// ground truth.
	hits := 0
	for i, o := range res.Objects {
		if i == 3 {
			break
		}
		f, ok := s.Keyframe(o.VideoID, o.FrameIdx)
		if !ok {
			t.Fatal("result frame not retained")
		}
		for oi := range f.Objects {
			if f.MatchesTermsRelational(oi, []string{"woman", "smiling", "sitting", "inside car"}) &&
				f.Objects[oi].Box.IoU(o.Box) > 0.5 {
				hits++
				break
			}
		}
	}
	if hits < 2 {
		t.Fatalf("only %d/3 top results are smiling seated women", hits)
	}
}

// TestSnapshotRoundTrip persists the vector database and verifies the
// reloaded index answers fast search identically.
func TestSnapshotRoundTrip(t *testing.T) {
	ds := datasets.Bellevue(datasets.Config{Seed: 7, Scale: 0.06})
	s := buildSystem(t, ds, Config{Seed: 1})

	var buf bytes.Buffer
	if err := s.DB().Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := vectordb.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	col, err := loaded.Collection("patches")
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != s.Collection().Len() {
		t.Fatalf("reloaded %d vectors, want %d", col.Len(), s.Collection().Len())
	}
	if col.IndexKind() != vectordb.IndexIMI {
		t.Fatalf("index kind = %q", col.IndexKind())
	}
	// Identical fast-search results before and after.
	q, err := s.Collection().Vector(firstID(t, s))
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Collection().Search(q, 10, ann.Params{NProbe: 16})
	if err != nil {
		t.Fatal(err)
	}
	b, err := col.Search(q, 10, ann.Params{NProbe: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("rank %d: %d vs %d", i, a[i].ID, b[i].ID)
		}
	}
}

// firstID fetches one stored patch ID via the relational side (insertion
// order scan).
func firstID(t *testing.T, s *System) int64 {
	t.Helper()
	rows := s.patches.Scan(nil)
	if len(rows) == 0 {
		t.Fatal("no patch metadata")
	}
	return rows[0][0].(int64)
}

// TestMetadataJoinConsistency verifies every indexed vector has exactly one
// relational row and the patch-ID round trip is coherent.
func TestMetadataJoinConsistency(t *testing.T) {
	ds := datasets.Beach(datasets.Config{Seed: 7, Scale: 0.06})
	s := buildSystem(t, ds, Config{Seed: 1})
	rows := s.patches.Scan(nil)
	if len(rows) != s.Collection().Len() {
		t.Fatalf("metadata rows %d != vectors %d", len(rows), s.Collection().Len())
	}
	for _, row := range rows[:min(len(rows), 50)] {
		pid := row[0].(int64)
		vid, fi, _ := UnpackPatchID(pid)
		if int64(vid) != row[1].(int64) || int64(fi) != row[2].(int64) {
			t.Fatalf("patch id %d decodes to (%d,%d) but row says (%d,%d)",
				pid, vid, fi, row[1], row[2])
		}
		if _, err := s.Collection().Vector(pid); err != nil {
			t.Fatalf("vector missing for patch %d: %v", pid, err)
		}
		if _, ok := s.Keyframe(vid, fi); !ok {
			t.Fatalf("keyframe (%d,%d) not retained", vid, fi)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestStreamingMode exercises segmented incremental indexing: per-video
// ingest+seal, queries answered across segments, no full rebuilds.
func TestStreamingMode(t *testing.T) {
	ds := datasets.QVHighlights(datasets.Config{Seed: 7, Scale: 0.1})
	s, err := New(Config{Seed: 1, Streaming: true, SegmentSize: 150})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Videos {
		if err := s.Ingest(&ds.Videos[i]); err != nil {
			t.Fatal(err)
		}
		if err := s.BuildIndex(); err != nil { // seals the segment
			t.Fatal(err)
		}
	}
	if s.Segmented() == nil {
		t.Fatal("streaming system must expose its segmented store")
	}
	sealed, growing := s.Segmented().Segments()
	if sealed < 2 {
		t.Fatalf("expected multiple sealed segments, got %d (+%d growing)", sealed, growing)
	}
	res, err := s.Query("A woman smiling sitting inside car.", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) == 0 {
		t.Fatal("streaming query returned nothing")
	}
	if s.Entities() == 0 {
		t.Fatal("no entities")
	}
}

// TestStreamingMatchesBatchAnswers compares streaming and batch modes on
// the same workload: same retrieval targets must surface.
func TestStreamingMatchesBatchAnswers(t *testing.T) {
	ds := datasets.Bellevue(datasets.Config{Seed: 7, Scale: 0.08})
	batch := buildSystem(t, ds, Config{Seed: 1})
	stream, err := New(Config{Seed: 1, Streaming: true, SegmentSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Videos {
		if err := stream.Ingest(&ds.Videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := stream.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if batch.Entities() != stream.Entities() {
		t.Fatalf("entity counts differ: %d vs %d", batch.Entities(), stream.Entities())
	}
	const q = "A bus driving on the road."
	rb, err := batch.Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := stream.Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.Objects) == 0 || len(rs.Objects) == 0 {
		t.Fatal("both modes must answer")
	}
	// Top frame sets should overlap substantially (indexes differ only in
	// segmentation, not content).
	top := func(objs []ResultObject, n int) map[[2]int]bool {
		out := map[[2]int]bool{}
		for i, o := range objs {
			if i == n {
				break
			}
			out[[2]int{o.VideoID, o.FrameIdx}] = true
		}
		return out
	}
	tb, ts := top(rb.Objects, 5), top(rs.Objects, 5)
	overlap := 0
	for k := range tb {
		if ts[k] {
			overlap++
		}
	}
	if overlap < 2 {
		t.Fatalf("streaming and batch top-5 frames barely overlap (%d/5)", overlap)
	}
}
