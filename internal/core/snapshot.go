package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"repro/internal/mat"
	"repro/internal/relational"
	"repro/internal/vectordb"
	"repro/internal/video"
)

// System snapshot format: the vectordb snapshot already persists every
// patch vector plus the index recipe, but a query also needs the
// relational side-store (the metadata join) and the retained keyframes
// (the rerank's image storage). A system snapshot therefore wraps all
// three:
//
//	magic "LOVOSYS1\n"
//	uint64 metadata length, then gob(snapMeta):
//	                     relational rows, keyframes, stats, built flag,
//	                     streaming flag
//	vector snapshot      monolithic: the vectordb DB snapshot;
//	                     streaming: the segmented-collection snapshot
//	                     (per-segment vectors + identities, indexes rebuilt
//	                     on load from identity-derived seeds)
//
// The gob section is length-prefixed because gob wraps non-ByteReader
// streams in a buffered reader that consumes past the value's end — the
// vector section that follows must start at an exact offset.
//
// A snapshot's streaming-ness must match the restoring system's Config:
// the two store layouts answer approximate queries from differently
// seeded indexes, so silently crossing modes would break the restart
// bit-identity contract.
const snapMagic = "LOVOSYS1\n"

type snapRow struct {
	PatchID, VideoID, FrameIdx, Patch int64
	X, Y, W, H, Objectness            float64
}

type snapKeyframe struct {
	VideoID, FrameIdx int
	Frame             video.Frame
}

type snapMeta struct {
	ProjDim   int
	Rows      []snapRow
	Keyframes []snapKeyframe
	Stats     IngestStats
	Built     bool
	Streaming bool
}

// SaveSnapshot persists the full system state — patch vectors, relational
// metadata, keyframes, stats — so a later LoadSnapshot serves queries
// without re-running Video Summary. Must not run concurrently with Ingest
// or BuildIndex (concurrent queries are fine).
func (s *System) SaveSnapshot(w io.Writer) error {
	if _, err := io.WriteString(w, snapMagic); err != nil {
		return err
	}
	meta := snapMeta{ProjDim: s.cfg.ProjDim, Streaming: s.seg != nil}
	for _, row := range s.patches.Scan(func(relational.Row) bool { return true }) {
		meta.Rows = append(meta.Rows, snapRow{
			PatchID: row[0].(int64), VideoID: row[1].(int64),
			FrameIdx: row[2].(int64), Patch: row[3].(int64),
			X: row[4].(float64), Y: row[5].(float64),
			W: row[6].(float64), H: row[7].(float64),
			Objectness: row[8].(float64),
		})
	}
	sort.Slice(meta.Rows, func(i, j int) bool { return meta.Rows[i].PatchID < meta.Rows[j].PatchID })
	s.mu.RLock()
	for k, f := range s.keyframes {
		meta.Keyframes = append(meta.Keyframes, snapKeyframe{VideoID: k.video, FrameIdx: k.frame, Frame: *f})
	}
	meta.Stats = s.stats
	meta.Built = s.built
	s.mu.RUnlock()
	sort.Slice(meta.Keyframes, func(i, j int) bool {
		if meta.Keyframes[i].VideoID != meta.Keyframes[j].VideoID {
			return meta.Keyframes[i].VideoID < meta.Keyframes[j].VideoID
		}
		return meta.Keyframes[i].FrameIdx < meta.Keyframes[j].FrameIdx
	})
	var mbuf bytes.Buffer
	if err := gob.NewEncoder(&mbuf).Encode(&meta); err != nil {
		return fmt.Errorf("core: encoding snapshot metadata: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(mbuf.Len())); err != nil {
		return err
	}
	if _, err := w.Write(mbuf.Bytes()); err != nil {
		return err
	}
	if s.seg != nil {
		return s.seg.Save(w)
	}
	return s.db.Save(w)
}

// LoadSnapshot restores a snapshot written by SaveSnapshot into this
// freshly-constructed, empty system. The system must have been built with
// the same Config (seed, dimensions) as the saver — encoders are seeded,
// so a mismatched seed would embed queries into a different space than the
// stored vectors. The index is rebuilt from the recorded kind and options.
func (s *System) LoadSnapshot(r io.Reader) error {
	if s.Entities() > 0 {
		return fmt.Errorf("core: LoadSnapshot requires an empty system (%d vectors present)", s.Entities())
	}
	head := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(r, head); err != nil {
		return fmt.Errorf("core: reading snapshot magic: %w", err)
	}
	if string(head) != snapMagic {
		return fmt.Errorf("core: bad snapshot magic %q", head)
	}
	var mlen uint64
	if err := binary.Read(r, binary.LittleEndian, &mlen); err != nil {
		return fmt.Errorf("core: reading snapshot metadata length: %w", err)
	}
	// A corrupted or truncated stream must fail cleanly, not drive an
	// allocation from a garbage length.
	const maxSnapMeta = 1 << 31
	if mlen > maxSnapMeta {
		return fmt.Errorf("core: snapshot metadata length %d exceeds the %d-byte bound (corrupt snapshot?)", mlen, maxSnapMeta)
	}
	mraw := make([]byte, mlen)
	if _, err := io.ReadFull(r, mraw); err != nil {
		return fmt.Errorf("core: reading snapshot metadata: %w", err)
	}
	var meta snapMeta
	if err := gob.NewDecoder(bytes.NewReader(mraw)).Decode(&meta); err != nil {
		return fmt.Errorf("core: decoding snapshot metadata: %w", err)
	}
	if meta.ProjDim != s.cfg.ProjDim {
		return fmt.Errorf("core: snapshot dimension D'=%d, system configured with %d", meta.ProjDim, s.cfg.ProjDim)
	}
	if meta.Streaming != (s.seg != nil) {
		mode := func(streaming bool) string {
			if streaming {
				return "streaming"
			}
			return "monolithic"
		}
		return fmt.Errorf("core: %s snapshot cannot restore into a %s system (set Config.Streaming to match the saver)",
			mode(meta.Streaming), mode(s.seg != nil))
	}
	var (
		db  *vectordb.DB
		col *vectordb.Collection
		seg *vectordb.SegmentedCollection
		err error
	)
	if meta.Streaming {
		seg, err = vectordb.LoadSegmented(r)
		if err != nil {
			return fmt.Errorf("core: loading segmented vector snapshot: %w", err)
		}
	} else {
		db, err = vectordb.Load(r)
		if err != nil {
			return fmt.Errorf("core: loading vector snapshot: %w", err)
		}
		col, err = db.Collection("patches")
		if err != nil {
			return fmt.Errorf("core: vector snapshot misses the patches collection: %w", err)
		}
	}
	for _, row := range meta.Rows {
		err := s.patches.Insert(relational.Row{
			row.PatchID, row.VideoID, row.FrameIdx, row.Patch,
			row.X, row.Y, row.W, row.H, row.Objectness,
		})
		if err != nil {
			return fmt.Errorf("core: restoring patch metadata: %w", err)
		}
	}
	s.mu.Lock()
	for _, kf := range meta.Keyframes {
		f := kf.Frame
		s.keyframes[frameKey{kf.VideoID, kf.FrameIdx}] = &f
	}
	s.stats = meta.Stats
	s.built = meta.Built
	if meta.Streaming {
		s.seg = seg
	} else {
		s.db = db
		s.col = col
	}
	s.mu.Unlock()
	// Rebuild the planner's selectivity state from the restored corpus:
	// keyframes re-feed the posting statistics in their canonical (video,
	// frame) snapshot order and the vector scan re-feeds the
	// score-distribution sketch in insertion order, so a loaded system
	// plans like the one that saved it. Calibration stays lazy.
	s.planner.reset()
	for _, kf := range meta.Keyframes {
		f := kf.Frame
		s.planner.noteFrame(&f)
	}
	scan := func(fn func(id int64, v mat.Vec) bool) {
		if meta.Streaming {
			seg.Scan(fn)
		} else {
			col.Scan(fn)
		}
	}
	scan(func(id int64, v mat.Vec) bool {
		s.planner.observe(v)
		return true
	})
	s.ingestGen.Add(1)
	return nil
}
