// Streaming: the paper's Section IX future work, live — footage arrives
// video by video; each batch is sealed into its own indexed segment, so the
// system answers queries continuously without ever rebuilding the index
// over old footage.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	sys, err := lovo.Open(lovo.Options{Seed: 11, Streaming: true, SegmentSize: 300})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := lovo.LoadDataset("qvhighlights", lovo.DatasetConfig{Seed: 11, Scale: 0.15})
	if err != nil {
		log.Fatal(err)
	}

	const q = "A white dog inside a car."
	for i := range ds.Videos {
		// New footage arrives...
		if err := sys.Ingest(&ds.Videos[i]); err != nil {
			log.Fatal(err)
		}
		// ...and is sealed into its own segment (no full rebuild).
		if err := sys.BuildIndex(); err != nil {
			log.Fatal(err)
		}
		// The system stays queryable throughout.
		if (i+1)%5 == 0 {
			res, err := sys.Query(q, lovo.QueryOptions{})
			if err != nil {
				log.Fatal(err)
			}
			sealed, growing := sys.Core().Segmented().Segments()
			fmt.Printf("after %2d videos: %d sealed segments (+%d growing vectors), query %q -> %d objects in %v\n",
				i+1, sealed, growing, q, len(res.Objects), res.Total().Round(1e6))
		}
	}
	fmt.Println("\neach seal indexed only the newest segment; earlier segments were never rebuilt.")
}
