// Concurrent clients: serve a query mix from many goroutines with
// QueryBatch while fresh footage keeps streaming in on another goroutine —
// the production shape of the concurrent execution engine. Parallel ingest
// encoding, the parallel stage-2 rerank and the client pool all share one
// Workers knob, and every answer is byte-identical to a serial run.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"

	"repro"
)

func main() {
	sys, err := lovo.Open(lovo.Options{Seed: 1, Workers: runtime.NumCPU()})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := lovo.LoadDataset("bellevue", lovo.DatasetConfig{Seed: 1, Scale: 0.1})
	if err != nil {
		log.Fatal(err)
	}

	// Ingest the first half and open for business.
	half := (len(ds.Videos) + 1) / 2
	for i := 0; i < half; i++ {
		if err := sys.Ingest(&ds.Videos[i]); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.BuildIndex(); err != nil {
		log.Fatal(err)
	}

	// The second half streams in behind the serving path.
	var ingest sync.WaitGroup
	ingest.Add(1)
	go func() {
		defer ingest.Done()
		for i := half; i < len(ds.Videos); i++ {
			if err := sys.Ingest(&ds.Videos[i]); err != nil {
				log.Fatal(err)
			}
		}
		if err := sys.BuildIndex(); err != nil {
			log.Fatal(err)
		}
	}()

	// Meanwhile, a burst of concurrent clients drains the benchmark
	// query mix.
	texts := make([]string, 0, 2*len(ds.Queries))
	for range 2 {
		for _, q := range ds.Queries {
			texts = append(texts, q.Text)
		}
	}
	results, err := sys.QueryBatch(texts, lovo.QueryOptions{}, runtime.NumCPU())
	if err != nil {
		log.Fatal(err)
	}
	for i, res := range results {
		if i >= 4 {
			fmt.Printf("  ... and %d more\n", len(results)-i)
			break
		}
		top := "no hits"
		if len(res.Objects) > 0 {
			o := res.Objects[0]
			top = fmt.Sprintf("video %d frame %d score %.3f", o.VideoID, o.FrameIdx, o.Score)
		}
		fmt.Printf("  %-70s -> %s (total %v)\n", texts[i], top, res.Total().Round(1e6))
	}

	ingest.Wait()
	st := sys.Stats()
	fmt.Printf("\nserved %d queries while ingest grew the store to %d keyframes / %d vectors\n",
		len(results), st.Keyframes, st.Tokens)
}
