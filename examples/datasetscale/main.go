// Datasetscale: the scalability story of Fig. 10/11 — as footage grows,
// LOVO's one-time processing grows linearly while query latency stays
// nearly flat, because search touches the index, not the video.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	const q = "A truck driving on the road."
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "footage(s)\tframes\tvectors\tprocessing\tsearch latency")
	for _, scale := range []float64{0.05, 0.1, 0.2, 0.4} {
		sys, err := lovo.Open(lovo.Options{Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		ds, err := lovo.LoadDataset("beach", lovo.DatasetConfig{Seed: 5, Scale: scale})
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.IngestDataset(ds); err != nil {
			log.Fatal(err)
		}
		if err := sys.BuildIndex(); err != nil {
			log.Fatal(err)
		}
		res, err := sys.Query(q, lovo.QueryOptions{})
		if err != nil {
			log.Fatal(err)
		}
		st := sys.Stats()
		fmt.Fprintf(w, "%.0f\t%d\t%d\t%v\t%v\n",
			ds.Duration(), st.Frames, st.Tokens,
			st.Processing.Round(1e6), res.Total().Round(1e6))
	}
	_ = w.Flush()
	fmt.Println("\nprocessing scales with footage; search latency barely moves.")
}
