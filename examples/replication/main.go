// Replication demo: every shard runs as a replica group, concurrent
// clients drive query traffic, and one replica is killed mid-run. Traffic
// keeps answering — byte-identically, because replicas are built from
// equal seeds and equal ingest fan-out — and the per-replica read counters
// show the router spreading load, then draining the dead replica.
package main

import (
	"fmt"
	"log"
	"reflect"
	"sync"

	"repro"
)

func main() {
	// Two shards, two replicas each: four full LOVO systems behind one
	// scatter-gather engine.
	sys, err := lovo.Open(lovo.Options{Seed: 1, Shards: 2, Replicas: 2})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := lovo.LoadDataset("qvhighlights", lovo.DatasetConfig{Seed: 1, Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingesting %s into 2 shards x 2 replicas: %d videos, %d frames\n",
		ds.Name, len(ds.Videos), ds.Frames())
	if err := sys.IngestDataset(ds); err != nil {
		log.Fatal(err)
	}
	if err := sys.BuildIndex(); err != nil {
		log.Fatal(err)
	}
	eng := sys.Engine()

	// Reference answers, computed before any failure.
	want := make([]*lovo.Result, len(ds.Queries))
	for i, q := range ds.Queries {
		if want[i], err = sys.Query(q.Text, lovo.QueryOptions{Workers: 1}); err != nil {
			log.Fatal(err)
		}
	}

	// Concurrent clients drive two rounds of the benchmark mix; between
	// the rounds, replica 0 of shard 0 dies. No client notices: the
	// router marks it failed out of the rotation and the surviving
	// replica serves the same bytes.
	const clients = 4
	divergences := 0
	var mu sync.Mutex
	round := func(label string) {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := range ds.Queries {
					qi := (c + i) % len(ds.Queries)
					res, err := sys.Query(ds.Queries[qi].Text, lovo.QueryOptions{Workers: 1})
					if err != nil {
						log.Fatalf("%s: query %s: %v", label, ds.Queries[qi].ID, err)
					}
					if !reflect.DeepEqual(res.Objects, want[qi].Objects) {
						mu.Lock()
						divergences++
						mu.Unlock()
					}
				}
			}(c)
		}
		wg.Wait()
		fmt.Printf("%s: %d queries answered\n", label, clients*len(ds.Queries))
	}

	round("round 1 (all replicas healthy)")
	fmt.Println("\n*** killing shard 0, replica 0 mid-traffic ***")
	eng.FailReplica(0, 0)
	round("round 2 (one replica down)")

	fmt.Printf("\nanswers identical to the healthy baseline: %t (%d divergences)\n\n",
		divergences == 0, divergences)
	fmt.Println("per-replica state after the drill:")
	for gi, group := range eng.ReplicaStats() {
		for ri, st := range group {
			fmt.Printf("  shard %d replica %d: healthy=%-5t reads=%d\n", gi, ri, st.Healthy, st.Reads)
		}
	}
}
