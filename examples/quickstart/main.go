// Quickstart: ingest a traffic surveillance workload once, then answer a
// complex natural-language object query with LOVO's two-stage strategy.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Open a LOVO system with default settings: MVmed keyframes, the
	// product-quantized inverted multi-index, and cross-modality rerank.
	sys, err := lovo.Open(lovo.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Generate the Bellevue-style intersection workload (scaled down;
	// Scale: 1.0 reproduces the paper-sized 60-minute feed).
	ds, err := lovo.LoadDataset("bellevue", lovo.DatasetConfig{Seed: 1, Scale: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d frames, %.0f seconds of footage\n", ds.Frames(), ds.Duration())

	// One-time, query-agnostic Video Summary + index construction. This
	// is the only pass over the footage LOVO ever makes.
	if err := sys.IngestDataset(ds); err != nil {
		log.Fatal(err)
	}
	if err := sys.BuildIndex(); err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("ingested: %d keyframes -> %d patch vectors (processing %v)\n\n",
		st.Keyframes, st.Tokens, st.Processing.Round(1e6))

	// Ask for something no predefined-class index could express.
	const q = "A red car driving in the center of the road."
	res, err := sys.Query(q, lovo.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n", q)
	fmt.Printf("latency: fast search %v + rerank %v\n", res.FastSearch.Round(1e3), res.Rerank.Round(1e6))
	for i, o := range res.Objects {
		if i >= 5 {
			break
		}
		fmt.Printf("  #%d video %d frame %d score %.3f box (%.2f,%.2f %.2fx%.2f)\n",
			i+1, o.VideoID, o.FrameIdx, o.Score, o.Box.X, o.Box.Y, o.Box.W, o.Box.H)
	}
}
