// Sharded server: partition a multi-clip corpus across scatter-gather
// shards with Options.Shards, mount the engine behind the HTTP serving
// tier, and drain a query mix with concurrent HTTP clients. Repeat queries
// hit the LRU result cache; the /stats endpoint reports hit rates and
// latency percentiles at the end.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"

	"repro"
	"repro/internal/server"
)

func main() {
	// Four shards over QVHighlights' 15 clips (videos partition by ID).
	sys, err := lovo.Open(lovo.Options{Seed: 1, Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := lovo.LoadDataset("qvhighlights", lovo.DatasetConfig{Seed: 1, Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingesting %s across 4 shards: %d videos, %d frames\n",
		ds.Name, len(ds.Videos), ds.Frames())
	if err := sys.IngestDataset(ds); err != nil {
		log.Fatal(err)
	}
	if err := sys.BuildIndex(); err != nil {
		log.Fatal(err)
	}

	// Serve the engine over HTTP on an ephemeral port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: server.New(sys.Engine(), server.Config{CacheSize: 64, Shards: 4})}
	go func() { _ = srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("lovod serving on %s\n\n", base)

	// Eight concurrent HTTP clients, each posting the benchmark mix —
	// so every query repeats across clients and the cache absorbs the
	// repeats.
	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := range ds.Queries {
				q := ds.Queries[(c+i)%len(ds.Queries)]
				body, _ := json.Marshal(map[string]string{"query": q.Text})
				resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					log.Fatal(err)
				}
				var ans struct {
					Objects []json.RawMessage `json:"objects"`
					Cached  bool              `json:"cached"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
					log.Fatal(err)
				}
				resp.Body.Close()
				if c == 0 {
					fmt.Printf("[client 0] %-6s %2d objects  cached=%v\n", q.ID, len(ans.Objects), ans.Cached)
				}
			}
		}(c)
	}
	wg.Wait()

	resp, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\n%d queries served by %d shards: cache %d hits / %d misses, p50 %.2fms, p99 %.2fms\n",
		st.QueriesTotal, st.Shards, st.Cache.Hits, st.Cache.Misses, st.LatencyP50Ms, st.LatencyP99Ms)
	_ = srv.Close()
}
