// Trafficsearch: the workload the paper's introduction motivates — complex
// object queries over an intersection feed, including spatial relationships
// that require cross-modality reasoning. Runs each query with and without
// the rerank stage to show what stage 2 buys (the Table IV ablation, live).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	sys, err := lovo.Open(lovo.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := lovo.LoadDataset("bellevue", lovo.DatasetConfig{Seed: 3, Scale: 0.12})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.IngestDataset(ds); err != nil {
		log.Fatal(err)
	}
	if err := sys.BuildIndex(); err != nil {
		log.Fatal(err)
	}

	queries := []string{
		// Simple: a predefined class.
		"A bus driving on the road.",
		// Normal: novel appearance features.
		"A red car driving in the center of the road.",
		// Complex: an open-world class.
		"A black SUV driving in the intersection of the road.",
		// Complex: a spatial relationship between two objects.
		"A red car side by side with another car, both positioned in the center of the road.",
	}

	for _, q := range queries {
		full, err := sys.Query(q, lovo.QueryOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fastOnly, err := sys.Query(q, lovo.QueryOptions{DisableRerank: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query: %s\n", q)
		fmt.Printf("  two-stage: %3d objects, top score %.3f, latency %v\n",
			len(full.Objects), topScore(full), full.Total().Round(1e6))
		fmt.Printf("  fast-only: %3d objects, top score %.3f, latency %v\n",
			len(fastOnly.Objects), topScore(fastOnly), fastOnly.Total().Round(1e6))
		if len(full.Objects) > 0 {
			o := full.Objects[0]
			fmt.Printf("  best match: video %d frame %d box (%.2f,%.2f %.2fx%.2f)\n",
				o.VideoID, o.FrameIdx, o.Box.X, o.Box.Y, o.Box.W, o.Box.H)
		}
		fmt.Println()
	}
	fmt.Println("note: the rerank stage costs milliseconds but is what makes the")
	fmt.Println("relational query meaningful — fast search alone cannot represent")
	fmt.Println("\"side by side\" (its encoder deliberately drops relations).")
}

func topScore(r *lovo.Result) float32 {
	if len(r.Objects) == 0 {
		return 0
	}
	return r.Objects[0].Score
}
