// Annvariants: the Table V study through the public API — the same system
// and workload under brute-force, IVF-PQ, inverted-multi-index and HNSW
// vector indexes, demonstrating the orthogonal index knob.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	const q = "A person riding a bicycle."
	ds, err := lovo.LoadDataset("cityscapes", lovo.DatasetConfig{Seed: 9, Scale: 0.15})
	if err != nil {
		log.Fatal(err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "index\tbuild\tsearch\ttop score\tresults")
	for _, kind := range []string{"flat", "ivfpq", "imi", "hnsw"} {
		sys, err := lovo.Open(lovo.Options{Seed: 9, Index: kind})
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.IngestDataset(ds); err != nil {
			log.Fatal(err)
		}
		if err := sys.BuildIndex(); err != nil {
			log.Fatal(err)
		}
		res, err := sys.Query(q, lovo.QueryOptions{})
		if err != nil {
			log.Fatal(err)
		}
		var top float32
		if len(res.Objects) > 0 {
			top = res.Objects[0].Score
		}
		fmt.Fprintf(w, "%s\t%v\t%v\t%.3f\t%d\n",
			kind, sys.Stats().Indexing.Round(1e6), res.Total().Round(1e6), top, len(res.Objects))
	}
	_ = w.Flush()
	fmt.Println("\nbrute force is exact but scans everything; the quantized and graph")
	fmt.Println("indexes trade a little recall for sub-linear search.")
}
