// Alternate modfile pinning developer tooling (used via
// `go <cmd> -modfile=tools/go.mod ...`), so tool versions are reviewed in
// diffs instead of floating behind an @version in the CI workflow. The
// module path matches the root go.mod: this file swaps the dependency set,
// not the module identity, so the tools analyze the repo's packages under
// their real import paths. CI runs `go mod tidy -modfile=tools/go.mod` to
// materialize the tool's (pruned) dependency graph and checksums before
// `go tool -modfile=tools/go.mod staticcheck ./...`; the staticcheck
// version below is the single source of truth.
module repro

go 1.24

tool honnef.co/go/tools/cmd/staticcheck

require honnef.co/go/tools v0.6.1
