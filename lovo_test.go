package lovo

import (
	"reflect"
	"testing"
)

func TestOpenDefaults(t *testing.T) {
	s, err := Open(Options{Seed: 1})
	if err != nil || s == nil {
		t.Fatal(err)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Options{Index: "btree"}); err == nil {
		t.Fatal("unknown index must error")
	}
	if _, err := Open(Options{Keyframes: "psychic"}); err == nil {
		t.Fatal("unknown keyframe strategy must error")
	}
}

func TestEndToEndQuickstart(t *testing.T) {
	s, err := Open(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := LoadDataset("bellevue", DatasetConfig{Seed: 7, Scale: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.IngestDataset(ds); err != nil {
		t.Fatal(err)
	}
	if err := s.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query("A red car driving in the center of the road.", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) == 0 {
		t.Fatal("quickstart query returned nothing")
	}
	st := s.Stats()
	if st.Frames == 0 || st.Tokens == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestOpenAllIndexKinds(t *testing.T) {
	ds, err := LoadDataset("beach", DatasetConfig{Seed: 7, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"flat", "ivfpq", "imi", "hnsw"} {
		s, err := Open(Options{Seed: 1, Index: kind})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.IngestDataset(ds); err != nil {
			t.Fatal(err)
		}
		if err := s.BuildIndex(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		res, err := s.Query("A truck driving on the road.", QueryOptions{})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(res.Objects) == 0 {
			t.Fatalf("%s: empty answer", kind)
		}
	}
}

func TestQueryBatchPublicAPI(t *testing.T) {
	s, err := Open(Options{Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := LoadDataset("bellevue", DatasetConfig{Seed: 7, Scale: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.IngestDataset(ds); err != nil {
		t.Fatal(err)
	}
	if err := s.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	texts := []string{
		"A red car driving in the center of the road.",
		"A bus driving on the road.",
	}
	batch, err := s.QueryBatch(texts, QueryOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(texts) {
		t.Fatalf("batch returned %d results for %d texts", len(batch), len(texts))
	}
	for i, text := range texts {
		lone, err := s.Query(text, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lone.Objects, batch[i].Objects) {
			t.Fatalf("batch result %d (%q) diverges from lone query", i, text)
		}
	}
}

func TestLoadDatasetUnknown(t *testing.T) {
	if _, err := LoadDataset("hollywood", DatasetConfig{}); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestStreamingPublicAPI(t *testing.T) {
	s, err := Open(Options{Seed: 2, Streaming: true, SegmentSize: 120})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := LoadDataset("beach", DatasetConfig{Seed: 2, Scale: 0.06})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.IngestDataset(ds); err != nil {
		t.Fatal(err)
	}
	if err := s.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query("A truck driving on the road.", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) == 0 {
		t.Fatal("streaming query returned nothing")
	}
	if s.Core().Segmented() == nil {
		t.Fatal("streaming store missing")
	}
}

func TestShardedPublicAPI(t *testing.T) {
	ds, err := LoadDataset("bellevue", DatasetConfig{Seed: 4, Scale: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	open := func(shards int) *System {
		s, err := Open(Options{Seed: 4, Index: "flat", Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.IngestDataset(ds); err != nil {
			t.Fatal(err)
		}
		if err := s.BuildIndex(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	single := open(1)
	sharded := open(3)
	if single.Engine() != nil {
		t.Fatal("unsharded system must not expose an engine")
	}
	if sharded.Engine() == nil || sharded.Core() != nil {
		t.Fatal("sharded system must expose the engine, not a core system")
	}
	if sharded.Stats().Keyframes != single.Stats().Keyframes {
		t.Fatalf("sharded keyframes %d != %d", sharded.Stats().Keyframes, single.Stats().Keyframes)
	}
	for _, q := range ds.Queries {
		want, err := single.Query(q.Text, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := sharded.Query(q.Text, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Objects, want.Objects) {
			t.Fatalf("%s: sharded public API diverges from single system", q.ID)
		}
	}
}

// TestReplicatedPublicAPI: Options.Replicas routes through the engine and
// answers byte-identically to the unreplicated system, and the engine
// surface exposes the failover controls.
func TestReplicatedPublicAPI(t *testing.T) {
	ds, err := LoadDataset("qvhighlights", DatasetConfig{Seed: 6, Scale: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	open := func(shards, replicas int) *System {
		s, err := Open(Options{Seed: 6, Shards: shards, Replicas: replicas})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.IngestDataset(ds); err != nil {
			t.Fatal(err)
		}
		if err := s.BuildIndex(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	base := open(2, 1)
	repl := open(2, 2)
	if repl.Engine() == nil || repl.Engine().Replicas() != 2 {
		t.Fatal("Replicas option must build a 2-replica engine")
	}
	// Replicas > 1 with Shards unset still takes the engine path.
	soloRepl, err := Open(Options{Seed: 6, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	if soloRepl.Engine() == nil || soloRepl.Engine().Shards() != 1 {
		t.Fatal("Replicas without Shards must build a 1-shard replicated engine")
	}
	if repl.Stats().Keyframes != base.Stats().Keyframes {
		t.Fatalf("replicated keyframes %d != %d", repl.Stats().Keyframes, base.Stats().Keyframes)
	}
	repl.Engine().FailReplica(0, 0)
	for _, q := range ds.Queries[:3] {
		want, err := base.Query(q.Text, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := repl.Query(q.Text, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Objects, want.Objects) {
			t.Fatalf("%s: replicated public API diverges (with a failed replica)", q.ID)
		}
	}
}
