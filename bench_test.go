package lovo

// One testing.B benchmark per table and figure of the paper's evaluation
// section. Each benchmark regenerates its experiment through the harness at
// smoke scale and reports the headline metric the paper's artifact shows,
// so `go test -bench=. -benchmem` doubles as a shape check across the whole
// evaluation. Run `go run ./cmd/lovobench` for full-scale tables.

import (
	"testing"

	"repro/internal/ann"
	"repro/internal/bench"
	"repro/internal/datasets"
	"repro/internal/embed"
	"repro/internal/mat"
	"repro/internal/query"
	"repro/internal/vectordb"
	"repro/internal/video"
	"repro/internal/vit"
	"repro/internal/xmodal"
)

// benchOpts are the smoke-scale harness options used by the per-figure
// benchmarks.
var benchOpts = bench.Options{Seed: 7, Quick: true, Scale: 0.05}

// runExperiment executes a harness experiment b.N times.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Run(name, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Motivation regenerates Fig. 2(a): method-family execution
// times across query complexities.
func BenchmarkFig2Motivation(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig6Accuracy regenerates Fig. 6: AveP of LOVO and all baselines.
func BenchmarkFig6Accuracy(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7Qualitative regenerates Fig. 7: top-1 retrievals for Q4.2.
func BenchmarkFig7Qualitative(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8Runtime regenerates Fig. 8: search/total time vs QD-search.
func BenchmarkFig8Runtime(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkTable3Emerging regenerates Table III: vision-based and
// end-to-end method times.
func BenchmarkTable3Emerging(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig9Distribution regenerates Fig. 9: LOVO's time split.
func BenchmarkFig9Distribution(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10Scalability regenerates Fig. 10: times vs video duration.
func BenchmarkFig10Scalability(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11aProcessing regenerates Fig. 11(a): processing vs frames.
func BenchmarkFig11aProcessing(b *testing.B) { runExperiment(b, "fig11a") }

// BenchmarkFig11bIndexScale regenerates Fig. 11(b): index size vs search.
func BenchmarkFig11bIndexScale(b *testing.B) { runExperiment(b, "fig11b") }

// BenchmarkFig11cPerEntity regenerates Fig. 11(c): per-entity search time.
func BenchmarkFig11cPerEntity(b *testing.B) { runExperiment(b, "fig11c") }

// BenchmarkFig11dRerank regenerates Fig. 11(d): rerank time vs objects.
func BenchmarkFig11dRerank(b *testing.B) { runExperiment(b, "fig11d") }

// BenchmarkTable4Ablation regenerates Table IV: module ablations.
func BenchmarkTable4Ablation(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable5ANNVariants regenerates Table V: BF / IVF-PQ / HNSW.
func BenchmarkTable5ANNVariants(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkTable7ActivityNet regenerates Table VII: the QA extension.
func BenchmarkTable7ActivityNet(b *testing.B) { runExperiment(b, "table7") }

// ---- Micro-benchmarks for the primitive stages, reported per operation ----

// BenchmarkVideoSummaryPerFrame measures the one-time per-keyframe encoding
// cost (the slope of Fig. 11(a)).
func BenchmarkVideoSummaryPerFrame(b *testing.B) {
	ds := datasets.Bellevue(datasets.Config{Seed: 7, Scale: 0.05})
	space := embed.NewSpace(64, 32, 1)
	cfg := vit.Config{Encoder: &embed.VisionEncoder{Space: space}}
	frames := ds.Videos[0].Frames
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vit.EncodeFrame(cfg, &frames[i%len(frames)])
	}
}

// BenchmarkFastSearch measures one ANNS lookup against an IMI collection
// (the sub-millisecond stage of Table IV).
func BenchmarkFastSearch(b *testing.B) {
	db := vectordb.New()
	col, err := db.CreateCollection("patches", vectordb.Schema{Dim: 32, Normalize: true})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20_000; i++ {
		if err := col.Insert(int64(i+1), mat.UnitGaussianVec(32, uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
	if err := col.BuildIndex(vectordb.IndexIMI, vectordb.IndexOptions{P: 4, M: 64, KeepRaw: true, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	q := mat.UnitGaussianVec(32, 999)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := col.Search(q, 100, ann.Params{NProbe: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRerankPerKeyframe measures one cross-modality grounding pass
// (the unit of Fig. 11(d)).
func BenchmarkRerankPerKeyframe(b *testing.B) {
	space := embed.NewSpace(64, 32, 1)
	model := xmodal.New(space, xmodal.Config{Seed: 1})
	te := &embed.TextEncoder{Space: space}
	toks := te.Tokens(query.Parse("A red car side by side with another car, both positioned in the center of the road."))
	f := &video.Frame{VideoID: 1, Index: 0, Context: []string{"road"}}
	for i := 0; i < 6; i++ {
		f.Objects = append(f.Objects, video.Object{
			Track: int64(i), Class: "car", Attrs: []string{"red"},
			Box:       video.Box{X: 0.1 * float64(i), Y: 0.4, W: 0.1, H: 0.07},
			Behaviors: []string{"driving"},
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.GroundFrame(f, toks)
	}
}

// BenchmarkEndToEndQuery measures a full Algorithm 2 query against an
// ingested workload.
func BenchmarkEndToEndQuery(b *testing.B) {
	sys, err := Open(Options{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	ds, err := LoadDataset("bellevue", DatasetConfig{Seed: 7, Scale: 0.06})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.IngestDataset(ds); err != nil {
		b.Fatal(err)
	}
	if err := sys.BuildIndex(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Query("A red car driving in the center of the road.", QueryOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtraNProbe sweeps Algorithm 1's A parameter (recall/latency).
func BenchmarkExtraNProbe(b *testing.B) { runExperiment(b, "extra-nprobe") }

// BenchmarkExtraStreaming compares batch rebuilds with segmented streaming
// ingest (the paper's Section IX future work).
func BenchmarkExtraStreaming(b *testing.B) { runExperiment(b, "extra-streaming") }
