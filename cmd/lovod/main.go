// Command lovod serves LOVO queries over HTTP: it ingests a benchmark
// dataset into a sharded scatter-gather engine at boot, then answers
// natural-language object queries as JSON, fronted by an LRU result cache.
//
// Usage:
//
//	lovod -dataset bellevue -scale 0.1 -shards 4 -addr 127.0.0.1:8077
//
//	curl localhost:8077/healthz
//	curl -X POST localhost:8077/query \
//	  -d '{"query": "A red car driving in the center of the road."}'
//	curl -X POST localhost:8077/query/batch \
//	  -d '{"queries": ["A truck driving on the road.", "A person walking on the street."]}'
//	curl localhost:8077/stats
//	curl localhost:8077/metrics
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/vectordb"
)

func main() {
	var (
		dataset = flag.String("dataset", "bellevue", "dataset: cityscapes|bellevue|qvhighlights|beach|activitynet")
		scale   = flag.Float64("scale", 0.15, "dataset duration scale (1.0 = paper-sized)")
		seed    = flag.Uint64("seed", 7, "workload and system seed")
		shards  = flag.Int("shards", 4, "shard count (videos partition by ID modulo shards)")
		index   = flag.String("index", "imi", "vector index: imi|ivfpq|hnsw|flat")
		cache   = flag.Int("cache", 256, "query-result cache capacity in entries (0 disables)")
		addr    = flag.String("addr", ":8077", "listen address")
		workers = flag.Int("workers", 0, "per-shard worker pool (0 = NumCPU)")
	)
	flag.Parse()

	kind, err := indexKind(*index)
	if err != nil {
		fatal(err)
	}
	eng, err := shard.New(*shards, core.Config{Seed: *seed, Index: kind, Workers: *workers})
	if err != nil {
		fatal(err)
	}
	ds, err := datasets.ByName(*dataset, datasets.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		fatal(err)
	}
	log.Printf("ingesting %s across %d shards: %d videos, %d frames, %.0f s of footage",
		ds.Name, eng.Shards(), len(ds.Videos), ds.Frames(), ds.Duration())
	if err := eng.IngestDataset(ds); err != nil {
		fatal(err)
	}
	if err := eng.BuildIndex(); err != nil {
		fatal(err)
	}
	st := eng.Stats()
	log.Printf("ready: %d keyframes, %d indexed patch vectors (aggregate shard-time: processing %s, indexing %s)",
		st.Keyframes, st.Tokens, st.Processing.Round(1e6), st.Indexing.Round(1e6))

	srv := server.New(eng, server.Config{CacheSize: *cache, Shards: eng.Shards()})
	log.Printf("serving on %s (POST /query, POST /query/batch, GET /stats /healthz /metrics)", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fatal(err)
	}
}

func indexKind(name string) (vectordb.IndexKind, error) {
	switch name {
	case "", "imi":
		return vectordb.IndexIMI, nil
	case "ivfpq":
		return vectordb.IndexIVFPQ, nil
	case "hnsw":
		return vectordb.IndexHNSW, nil
	case "flat", "bf":
		return vectordb.IndexFlat, nil
	default:
		return "", fmt.Errorf("unknown index %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lovod:", err)
	os.Exit(1)
}
