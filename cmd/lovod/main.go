// Command lovod serves LOVO queries over HTTP: it ingests a benchmark
// dataset into a sharded, optionally replicated scatter-gather engine at
// boot (or restores a -save snapshot and skips ingest entirely), then
// answers natural-language object queries as JSON, fronted by an LRU
// result cache.
//
// Single-host mode hosts all shards in-process. Coordinator mode
// (-shard-addrs) instead dials one lovoshard worker per address and routes
// ingest, index builds, snapshots and both query stages over the shard RPC
// boundary — the workers hold the corpus, lovod holds the merge. Workers
// must be booted with the same -seed and -index; lovod verifies this at
// startup and fails fast — as it does when any worker is unreachable.
//
// Usage:
//
//	lovod -dataset bellevue -scale 0.1 -shards 4 -replicas 2 -addr 127.0.0.1:8077
//	lovod -dataset bellevue -scale 0.1 -shards 4 -save lovo.snap   # first boot
//	lovod -dataset bellevue -scale 0.1 -shards 4 -load lovo.snap   # restart, no re-ingest
//	lovod -dataset bellevue -scale 0.1 -seed 7 \
//	    -shard-addrs 127.0.0.1:9101,127.0.0.1:9102                 # remote workers
//
//	curl localhost:8077/healthz
//	curl -X POST localhost:8077/query \
//	  -d '{"query": "A red car driving in the center of the road."}'
//	curl -X POST localhost:8077/query \
//	  -d '{"query": "A red car driving in the center of the road.",
//	       "options": {"min_recall": 0.9}}'
//	curl -X POST localhost:8077/query/batch \
//	  -d '{"queries": ["A truck driving on the road.", "A person walking on the street."]}'
//	curl localhost:8077/stats
//	curl localhost:8077/metrics
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/mat"
	"repro/internal/remote"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/vectordb"
)

func main() {
	var (
		dataset    = flag.String("dataset", "bellevue", "dataset: cityscapes|bellevue|qvhighlights|beach|activitynet")
		scale      = flag.Float64("scale", 0.15, "dataset duration scale (1.0 = paper-sized)")
		seed       = flag.Uint64("seed", 7, "workload and system seed")
		shards     = flag.Int("shards", 4, "shard count (videos partition by ID modulo shards; ignored with -shard-addrs)")
		replicas   = flag.Int("replicas", 1, "replicas per shard (queries pick one; ingest fans to all)")
		index      = flag.String("index", "imi", "vector index: imi|ivfpq|hnsw|flat")
		cache      = flag.Int("cache", 512, "query-result cache capacity in entries (0 disables; default from the cachesweep bench)")
		minRecall  = flag.Float64("min-recall", 0, "default stage-1 recall bound in (0,1] applied to queries without their own min_recall; 0 keeps the fixed default knobs")
		addr       = flag.String("addr", ":8077", "listen address")
		workers    = flag.Int("workers", 0, "per-shard worker pool (0 = NumCPU)")
		saveFile   = flag.String("save", "", "after ingest and indexing, write an engine snapshot to this file")
		loadFile   = flag.String("load", "", "restore a snapshot written by -save instead of re-ingesting (boot with the saver's -seed/-index/-shards; -replicas may differ)")
		shardAddrs = flag.String("shard-addrs", "", "comma-separated lovoshard worker addresses; enables coordinator mode (one remote shard per address)")
		connectTO  = flag.Duration("connect-timeout", 3*time.Second, "per-worker dial timeout for -shard-addrs (boot fails fast on an unreachable worker)")
		rpcTimeout = flag.Duration("rpc-timeout", 30*time.Second, "per-call deadline for shard RPCs")
		debugAddr  = flag.String("debug-addr", "", "optional second listen address for the debug tier (/debug/queries, /debug/pprof/*); keep it off the public port")
		kernels    = flag.String("kernels", "", "pin the float32 scoring-kernel tier: auto|avx2|sse2|neon|purego (default: $LOVO_KERNELS, else widest supported; all tiers are bit-identical)")
		streaming  = flag.Bool("streaming", false, "segmented continuous-ingest mode: POST /ingest accepts footage while serving, seals and compactions run in the background (must match the workers' -streaming)")
		segSize    = flag.Int("segment-size", 0, "streaming seal threshold in vectors per segment (0 = default 4096; must match the workers')")
	)
	flag.Parse()

	if *kernels != "" {
		if _, err := mat.SetKernelTier(*kernels); err != nil {
			fatal(fmt.Errorf("-kernels: %w", err))
		}
	} else if err := mat.KernelTierEnvError(); err != nil {
		fatal(fmt.Errorf("LOVO_KERNELS: %w", err))
	}
	log.Printf("kernels: %s tier active (host supports: %s)",
		mat.KernelTier(), strings.Join(mat.KernelTiers(), " "))

	kind, err := vectordb.ParseKind(*index)
	if err != nil {
		fatal(err)
	}
	if err := core.ValidateMinRecall(*minRecall); err != nil {
		fatal(fmt.Errorf("-min-recall: %w", err))
	}
	cfg := core.Config{Seed: *seed, Index: kind, Workers: *workers,
		Streaming: *streaming, SegmentSize: *segSize}
	if *segSize != 0 && !*streaming {
		fatal(fmt.Errorf("-segment-size requires -streaming"))
	}

	var eng *shard.Engine
	if *shardAddrs != "" {
		eng, err = connectWorkers(*shardAddrs, cfg, *connectTO, *rpcTimeout)
	} else {
		eng, err = shard.NewReplicated(*shards, *replicas, cfg)
	}
	if err != nil {
		fatal(err)
	}
	if *loadFile != "" {
		// The whole point of -load is skipping the corpus work: don't
		// even generate the dataset, just restore and serve.
		f, err := os.Open(*loadFile)
		if err != nil {
			fatal(err)
		}
		err = eng.LoadSnapshot(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		log.Printf("restored snapshot %s into %d shards (skipping ingest of %s)",
			*loadFile, eng.Shards(), *dataset)
	} else {
		ds, err := datasets.ByName(*dataset, datasets.Config{Seed: *seed, Scale: *scale})
		if err != nil {
			fatal(err)
		}
		log.Printf("ingesting %s across %d shards: %d videos, %d frames, %.0f s of footage",
			ds.Name, eng.Shards(), len(ds.Videos), ds.Frames(), ds.Duration())
		if err := eng.IngestDataset(ds); err != nil {
			fatal(err)
		}
		if err := eng.BuildIndex(); err != nil {
			fatal(err)
		}
		if *saveFile != "" {
			if err := writeSnapshot(eng, *saveFile); err != nil {
				fatal(err)
			}
			log.Printf("snapshot written to %s", *saveFile)
		}
	}
	st := eng.Stats()
	log.Printf("ready: %d keyframes, %d indexed patch vectors (aggregate shard-time: processing %s, indexing %s)",
		st.Keyframes, st.Tokens, st.Processing.Round(1e6), st.Indexing.Round(1e6))
	if *streaming {
		if seg, ok := eng.SegmentStats(); ok {
			log.Printf("streaming: %d sealed / %d building segments, %d vectors growing (POST /ingest accepts live footage)",
				seg.Sealed, seg.Building, seg.GrowingLen)
		}
	}

	srv := server.New(eng, server.Config{
		CacheSize:        *cache,
		Shards:           eng.Shards(),
		DefaultMinRecall: *minRecall,
	})
	if *minRecall > 0 {
		log.Printf("planner: default accuracy bound min_recall=%.2f (per-request min_recall overrides)", *minRecall)
	}
	if *debugAddr != "" {
		dh := srv.DebugHandler()
		go func() {
			if err := http.ListenAndServe(*debugAddr, dh); err != nil {
				fatal(fmt.Errorf("debug listener: %w", err))
			}
		}()
		log.Printf("debug tier on %s (GET /debug/queries, /debug/pprof/)", *debugAddr)
	}
	log.Printf("serving on %s (POST /query, /query/batch, /ingest; GET /stats /healthz /metrics /debug/queries)", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fatal(err)
	}
}

// connectWorkers builds a coordinator engine over one remote shard per
// worker address: every worker is dialed and health-checked up front (an
// unreachable host fails the boot with its address in the error instead of
// hanging until the first query), and every worker's resolved configuration
// is verified against the coordinator's.
func connectWorkers(addrList string, cfg core.Config, dialTO, rpcTO time.Duration) (*shard.Engine, error) {
	addrs := strings.Split(addrList, ",")
	clients, err := remote.Connect(addrs, remote.ClientOptions{
		DialTimeout: dialTO,
		Timeout:     rpcTO,
	})
	if err != nil {
		return nil, err
	}
	if err := remote.VerifyConfig(clients, remote.Summarize(cfg.Resolved(), 0)); err != nil {
		for _, c := range clients {
			c.Close()
		}
		return nil, err
	}
	backends := make([]remote.ShardBackend, len(clients))
	for i, c := range clients {
		backends[i] = c
		log.Printf("shard %d: remote worker %s", i, c.Addr())
	}
	return shard.NewWithBackends(backends, cfg)
}

// writeSnapshot persists the engine to path, fsync-free but close-checked.
func writeSnapshot(eng *shard.Engine, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := eng.SaveSnapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lovod:", err)
	os.Exit(1)
}
