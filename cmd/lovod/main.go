// Command lovod serves LOVO queries over HTTP: it ingests a benchmark
// dataset into a sharded, optionally replicated scatter-gather engine at
// boot (or restores a -save snapshot and skips ingest entirely), then
// answers natural-language object queries as JSON, fronted by an LRU
// result cache.
//
// Usage:
//
//	lovod -dataset bellevue -scale 0.1 -shards 4 -replicas 2 -addr 127.0.0.1:8077
//	lovod -dataset bellevue -scale 0.1 -shards 4 -save lovo.snap   # first boot
//	lovod -dataset bellevue -scale 0.1 -shards 4 -load lovo.snap   # restart, no re-ingest
//
//	curl localhost:8077/healthz
//	curl -X POST localhost:8077/query \
//	  -d '{"query": "A red car driving in the center of the road."}'
//	curl -X POST localhost:8077/query/batch \
//	  -d '{"queries": ["A truck driving on the road.", "A person walking on the street."]}'
//	curl localhost:8077/stats
//	curl localhost:8077/metrics
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/vectordb"
)

func main() {
	var (
		dataset  = flag.String("dataset", "bellevue", "dataset: cityscapes|bellevue|qvhighlights|beach|activitynet")
		scale    = flag.Float64("scale", 0.15, "dataset duration scale (1.0 = paper-sized)")
		seed     = flag.Uint64("seed", 7, "workload and system seed")
		shards   = flag.Int("shards", 4, "shard count (videos partition by ID modulo shards)")
		replicas = flag.Int("replicas", 1, "replicas per shard (queries pick one; ingest fans to all)")
		index    = flag.String("index", "imi", "vector index: imi|ivfpq|hnsw|flat")
		cache    = flag.Int("cache", 256, "query-result cache capacity in entries (0 disables)")
		addr     = flag.String("addr", ":8077", "listen address")
		workers  = flag.Int("workers", 0, "per-shard worker pool (0 = NumCPU)")
		saveFile = flag.String("save", "", "after ingest and indexing, write an engine snapshot to this file")
		loadFile = flag.String("load", "", "restore a snapshot written by -save instead of re-ingesting (boot with the saver's -seed/-index/-shards; -replicas may differ)")
	)
	flag.Parse()

	kind, err := indexKind(*index)
	if err != nil {
		fatal(err)
	}
	eng, err := shard.NewReplicated(*shards, *replicas, core.Config{Seed: *seed, Index: kind, Workers: *workers})
	if err != nil {
		fatal(err)
	}
	if *loadFile != "" {
		// The whole point of -load is skipping the corpus work: don't
		// even generate the dataset, just restore and serve.
		f, err := os.Open(*loadFile)
		if err != nil {
			fatal(err)
		}
		err = eng.LoadSnapshot(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		log.Printf("restored snapshot %s into %d shards x %d replicas (skipping ingest of %s)",
			*loadFile, eng.Shards(), eng.Replicas(), *dataset)
	} else {
		ds, err := datasets.ByName(*dataset, datasets.Config{Seed: *seed, Scale: *scale})
		if err != nil {
			fatal(err)
		}
		log.Printf("ingesting %s across %d shards x %d replicas: %d videos, %d frames, %.0f s of footage",
			ds.Name, eng.Shards(), eng.Replicas(), len(ds.Videos), ds.Frames(), ds.Duration())
		if err := eng.IngestDataset(ds); err != nil {
			fatal(err)
		}
		if err := eng.BuildIndex(); err != nil {
			fatal(err)
		}
		if *saveFile != "" {
			if err := writeSnapshot(eng, *saveFile); err != nil {
				fatal(err)
			}
			log.Printf("snapshot written to %s", *saveFile)
		}
	}
	st := eng.Stats()
	log.Printf("ready: %d keyframes, %d indexed patch vectors (aggregate shard-time: processing %s, indexing %s)",
		st.Keyframes, st.Tokens, st.Processing.Round(1e6), st.Indexing.Round(1e6))

	srv := server.New(eng, server.Config{CacheSize: *cache, Shards: eng.Shards()})
	log.Printf("serving on %s (POST /query, POST /query/batch, GET /stats /healthz /metrics)", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fatal(err)
	}
}

// writeSnapshot persists the engine to path, fsync-free but close-checked.
func writeSnapshot(eng *shard.Engine, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := eng.SaveSnapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func indexKind(name string) (vectordb.IndexKind, error) {
	switch name {
	case "", "imi":
		return vectordb.IndexIMI, nil
	case "ivfpq":
		return vectordb.IndexIVFPQ, nil
	case "hnsw":
		return vectordb.IndexHNSW, nil
	case "flat", "bf":
		return vectordb.IndexFlat, nil
	default:
		return "", fmt.Errorf("unknown index %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lovod:", err)
	os.Exit(1)
}
