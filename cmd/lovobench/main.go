// Command lovobench regenerates the paper's tables and figures against the
// synthetic workloads.
//
// Usage:
//
//	lovobench                      # run every experiment
//	lovobench -experiment fig6     # run one experiment
//	lovobench -list                # list experiment names
//	lovobench -scale 0.5 -seed 9   # bigger workloads, different seed
//	lovobench -quick               # smoke-test sweeps
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment to run (default: all)")
		list       = flag.Bool("list", false, "list experiment names and exit")
		seed       = flag.Uint64("seed", 7, "workload seed")
		scale      = flag.Float64("scale", 0, "dataset duration scale (0 = default)")
		quick      = flag.Bool("quick", false, "shrink sweeps for smoke runs")
		workers    = flag.Int("workers", 0, "max worker count for the throughput sweep (0 = max(4, NumCPU))")
		jsonDir    = flag.String("json", "", "also write each table as a BENCH_<id>.json snapshot into this directory")
	)
	flag.Parse()

	if *list {
		for _, n := range bench.Experiments() {
			fmt.Println(n)
		}
		return
	}
	opts := bench.Options{Seed: *seed, Scale: *scale, Quick: *quick, Workers: *workers}
	run := func(name string) error {
		start := time.Now()
		t, err := bench.Run(name, opts)
		if err != nil {
			return err
		}
		fmt.Println(t)
		if *jsonDir != "" {
			path, err := t.WriteJSON(*jsonDir)
			if err != nil {
				return err
			}
			fmt.Printf("(snapshot written to %s)\n", path)
		}
		fmt.Printf("(%s completed in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}
	if *experiment != "" {
		if err := run(*experiment); err != nil {
			fmt.Fprintln(os.Stderr, "lovobench:", err)
			os.Exit(1)
		}
		return
	}
	for _, name := range bench.Experiments() {
		if err := run(name); err != nil {
			fmt.Fprintln(os.Stderr, "lovobench:", err)
			os.Exit(1)
		}
	}
}
