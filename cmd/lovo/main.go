// Command lovo is the interactive front-end to the LOVO system: it
// generates (or loads) a benchmark dataset, runs one-time Video Summary and
// indexing, then answers object queries.
//
// Usage:
//
//	lovo -dataset bellevue -query "A red car driving in the center of the road."
//	lovo -dataset beach -scale 0.3 -index hnsw -query "A truck driving on the road." -topn 5
//	lovo -dataset qvhighlights -stats
//	lovo -dataset bellevue -bench          # run the dataset's Table II queries
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro"
	"repro/internal/mat"
)

func main() {
	var (
		dataset  = flag.String("dataset", "bellevue", "dataset: cityscapes|bellevue|qvhighlights|beach|activitynet")
		scale    = flag.Float64("scale", 0.15, "dataset duration scale (1.0 = paper-sized)")
		seed     = flag.Uint64("seed", 7, "workload and system seed")
		index    = flag.String("index", "imi", "vector index: imi|ivfpq|hnsw|flat")
		keyfr    = flag.String("keyframes", "mvmed", "keyframe strategy: mvmed|uniform|all")
		queryStr = flag.String("query", "", "natural-language object query")
		topn     = flag.Int("topn", 10, "frames to return")
		noRerank = flag.Bool("no-rerank", false, "disable cross-modality rerank")
		stats    = flag.Bool("stats", false, "print ingest statistics and exit")
		benchAll = flag.Bool("bench", false, "run the dataset's benchmark queries")
		shards   = flag.Int("shards", 0, "partition across N scatter-gather shards (0/1 = single system)")
		saveFile = flag.String("save", "", "after ingest and indexing, write a system snapshot to this file")
		loadFile = flag.String("load", "", "restore a snapshot written by -save instead of re-ingesting (open with the saver's -seed/-index/-shards)")
		kernels  = flag.String("kernels", "", "pin the float32 scoring-kernel tier: auto|avx2|sse2|neon|purego (default: $LOVO_KERNELS, else widest supported; all tiers are bit-identical)")
	)
	flag.Parse()

	if *kernels != "" {
		if _, err := mat.SetKernelTier(*kernels); err != nil {
			fatal(fmt.Errorf("-kernels: %w", err))
		}
	} else if err := mat.KernelTierEnvError(); err != nil {
		fatal(fmt.Errorf("LOVO_KERNELS: %w", err))
	}

	sys, err := lovo.Open(lovo.Options{Seed: *seed, Index: *index, Keyframes: *keyfr, TopN: *topn, Shards: *shards})
	if err != nil {
		fatal(err)
	}
	ds, err := lovo.LoadDataset(*dataset, lovo.DatasetConfig{Seed: *seed, Scale: *scale})
	if err != nil {
		fatal(err)
	}
	if *loadFile != "" {
		f, err := os.Open(*loadFile)
		if err != nil {
			fatal(err)
		}
		err = sys.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("restored snapshot %s (skipping ingest of %s)\n", *loadFile, ds.Name)
	} else {
		fmt.Printf("ingesting %s: %d videos, %d frames, %.0f s of footage...\n",
			ds.Name, len(ds.Videos), ds.Frames(), ds.Duration())
		if err := sys.IngestDataset(ds); err != nil {
			fatal(err)
		}
		if err := sys.BuildIndex(); err != nil {
			fatal(err)
		}
		if *saveFile != "" {
			f, err := os.Create(*saveFile)
			if err != nil {
				fatal(err)
			}
			err = sys.Save(f)
			if err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fatal(err)
			}
			fmt.Printf("snapshot written to %s\n", *saveFile)
		}
	}
	st := sys.Stats()
	fmt.Printf("summary: %d keyframes, %d indexed patch vectors, processing %s, indexing %s (%s kernels)\n\n",
		st.Keyframes, st.Tokens, st.Processing.Round(1e6), st.Indexing.Round(1e6), mat.KernelTier())

	if *stats {
		return
	}

	runQuery := func(text string) {
		res, err := sys.Query(text, lovo.QueryOptions{DisableRerank: *noRerank})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("query: %q\n", text)
		fmt.Printf("  fast search %s, rerank %s, %d candidate frames\n",
			res.FastSearch.Round(1e3), res.Rerank.Round(1e6), res.CandidateFrames)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "  rank\tvideo\tframe\tscore\tbox")
		for i, o := range res.Objects {
			if i >= *topn {
				break
			}
			fmt.Fprintf(w, "  %d\t%d\t%d\t%.3f\t(%.2f,%.2f %.2fx%.2f)\n",
				i+1, o.VideoID, o.FrameIdx, o.Score, o.Box.X, o.Box.Y, o.Box.W, o.Box.H)
		}
		_ = w.Flush()
		fmt.Println()
	}

	switch {
	case *benchAll:
		for _, q := range ds.Queries {
			fmt.Printf("[%s] ", q.ID)
			runQuery(q.Text)
		}
	case *queryStr != "":
		runQuery(*queryStr)
	default:
		fmt.Println("no -query given; running the dataset's first benchmark query")
		runQuery(ds.Queries[0].Text)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lovo:", err)
	os.Exit(1)
}
