// Command lovocheck runs the repo's invariant analyzers (internal/lint)
// over Go packages: the determinism, codec-safety, kernel-discipline and
// ctx-threading contracts, enforced at the source level.
//
// Standalone mode (the usual way, and what CI runs):
//
//	lovocheck ./...
//
// resolves the package patterns with `go list`, analyzes every non-test
// file, prints findings as file:line:col: [analyzer] message, and exits 2
// if there were any.
//
// The binary also speaks enough of the `go vet -vettool` unit-checker
// protocol to run as:
//
//	go vet -vettool=$(which lovocheck) ./...
//
// (-V=full / -flags handshakes, then one JSON .cfg per package with
// export-data imports).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	// go vet probes the tool before use: -V=full must answer a version
	// line (it keys vet's result cache), -flags must answer a JSON list
	// of extra flag definitions (we register none).
	for _, arg := range os.Args[1:] {
		switch {
		case strings.HasPrefix(arg, "-V"):
			fmt.Println("lovocheck version v1 (repro invariant suite)")
			return
		case arg == "-flags":
			fmt.Println("[]")
			return
		}
	}

	debug := flag.Bool("debug", false, "print swallowed type-resolution errors")
	flag.Parse()
	args := flag.Args()

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args, *debug))
}

// listedPackage is the slice of `go list -json` output the driver needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Standard   bool
	GoFiles    []string
}

func runStandalone(patterns []string, debug bool) int {
	cmd := exec.Command("go", append([]string{"list", "-json=Dir,ImportPath,Standard,GoFiles", "--"}, patterns...)...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lovocheck: go list: %v\n", err)
		return 1
	}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	exit := 0
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "lovocheck: decoding go list output: %v\n", err)
			return 1
		}
		if p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := lint.LoadFiles(p.ImportPath, files)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lovocheck: %s: %v\n", p.ImportPath, err)
			exit = 1
			continue
		}
		if debug {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "lovocheck: debug: %s: %v\n", p.ImportPath, terr)
			}
		}
		for _, d := range lint.RunAll(pkg) {
			fmt.Printf("%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			exit = 2
		}
	}
	return exit
}

// vetConfig is the subset of cmd/go's vet .cfg JSON the tool consumes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package described by a vet .cfg: files are
// typechecked against the build's export data (PackageFile), findings are
// printed plainly on stderr, and the facts file (VetxOutput) is written
// empty — the suite exchanges no cross-package facts.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lovocheck: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "lovocheck: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "lovocheck: writing facts: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	pkg := &lint.Package{Path: cfg.ImportPath, Fset: fset}
	for _, fn := range cfg.GoFiles {
		// Tests and bench harnesses are out of the invariants' scope (they
		// may use clocks and RNGs freely); vet hands them over as part of
		// the test variant's GoFiles, so drop them here.
		if strings.HasSuffix(fn, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lovocheck: %v\n", err)
			return 1
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return 0
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tconf := types.Config{
		Importer: importer.ForCompiler(fset, cfg.Compiler, lookup),
		Error:    func(error) {},
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, pkg.Files, info)
	if err != nil && cfg.SucceedOnTypecheckFailure {
		return 0
	}
	pkg.Types = tpkg
	pkg.Info = info

	exit := 0
	for _, d := range lint.RunAll(pkg) {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		exit = 2
	}
	return exit
}
