// Command lovoshard hosts one LOVO shard — a replica group of R
// equal-seeded core.Systems — and serves the shard RPC protocol, so a lovod
// coordinator on another host can scatter-gather queries across a fleet of
// workers.
//
// A worker boots empty: the coordinator partitions the corpus by video ID
// and routes each video's ingest (and the index build, snapshot save/load,
// and both query stages) over the RPC boundary. Boot every worker and the
// coordinator with the same -seed and -index — encoders are seeded, so a
// mismatch would embed queries into a different space than the stored
// vectors; the coordinator verifies this at startup and refuses to serve on
// a mismatch.
//
// Usage:
//
//	lovoshard -addr 127.0.0.1:9101 -seed 7 -index imi -replicas 2
//	lovoshard -addr 127.0.0.1:9102 -seed 7 -index imi -replicas 2
//	lovod -dataset bellevue -scale 0.1 -seed 7 -index imi \
//	    -shard-addrs 127.0.0.1:9101,127.0.0.1:9102 -addr :8077
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/remote"
	"repro/internal/shard"
	"repro/internal/vectordb"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:9101", "shard RPC listen address")
		seed      = flag.Uint64("seed", 7, "system seed (must match the coordinator's)")
		index     = flag.String("index", "imi", "vector index: imi|ivfpq|hnsw|flat (must match the coordinator's)")
		replicas  = flag.Int("replicas", 1, "replicas hosted by this worker (queries pick one; ingest fans to all)")
		workers   = flag.Int("workers", 0, "worker pool per replica (0 = NumCPU)")
		kernels   = flag.String("kernels", "", "pin the float32 scoring-kernel tier: auto|avx2|sse2|neon|purego (default: $LOVO_KERNELS, else widest supported; all tiers are bit-identical)")
		streaming = flag.Bool("streaming", false, "segmented continuous-ingest mode (must match the coordinator's -streaming)")
		segSize   = flag.Int("segment-size", 0, "streaming seal threshold in vectors per segment (0 = default 4096; must match the coordinator's)")
	)
	flag.Parse()

	if *kernels != "" {
		if _, err := mat.SetKernelTier(*kernels); err != nil {
			fatal(fmt.Errorf("-kernels: %w", err))
		}
	} else if err := mat.KernelTierEnvError(); err != nil {
		fatal(fmt.Errorf("LOVO_KERNELS: %w", err))
	}
	log.Printf("kernels: %s tier active (host supports: %s)",
		mat.KernelTier(), strings.Join(mat.KernelTiers(), " "))

	kind, err := vectordb.ParseKind(*index)
	if err != nil {
		fatal(err)
	}
	if *segSize != 0 && !*streaming {
		fatal(fmt.Errorf("-segment-size requires -streaming"))
	}
	backend, err := shard.NewLocal(*replicas, core.Config{Seed: *seed, Index: kind, Workers: *workers,
		Streaming: *streaming, SegmentSize: *segSize})
	if err != nil {
		fatal(err)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := remote.NewServer(backend)
	srv.Logf = log.Printf
	mode := "batch"
	if *streaming {
		mode = "streaming"
	}
	log.Printf("lovoshard: hosting 1 shard x %d replicas (%s index, seed %d, %s mode), RPC on %s",
		*replicas, kind, *seed, mode, l.Addr())
	if err := srv.Serve(l); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lovoshard:", err)
	os.Exit(1)
}
