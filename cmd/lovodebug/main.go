// Command lovodebug prints a labelled ranking for one LOVO query; a
// development aid for inspecting retrieval quality.
package main

import (
	"flag"
	"fmt"
	"sort"

	"repro/internal/bench"
	"repro/internal/datasets"
	"repro/internal/metrics"
	"repro/internal/query"
)

func main() {
	dsName := flag.String("dataset", "beach", "dataset")
	qText := flag.String("query", "A green bus driving on the road.", "query")
	scale := flag.Float64("scale", 0.06, "scale")
	exhaustive := flag.Bool("exhaustive", false, "disable ANNS")
	norerank := flag.Bool("norerank", false, "disable rerank")
	maxout := flag.Int("maxout", 25, "max results printed")
	flag.Parse()

	ds, err := datasets.ByName(*dsName, datasets.Config{Seed: 7, Scale: *scale})
	if err != nil {
		panic(err)
	}
	p := query.Parse(*qText)
	var terms []string
	for _, t := range p.Terms {
		terms = append(terms, t.Name)
	}
	gt := datasets.GroundTruth(ds, terms)
	fmt.Printf("query terms: %v\nGT instances: %d, depth %d\n", terms, len(gt), metrics.Depth(gt))

	lovo := bench.NewLOVO(7)
	lovo.NoANNS = *exhaustive
	lovo.NoRerank = *norerank
	if _, err := lovo.Prepare(ds); err != nil {
		panic(err)
	}
	// Report GT instance coverage by keyframes.
	for gi, inst := range gt {
		frames := make([]int, 0, len(inst.Boxes))
		for fi := range inst.Boxes {
			frames = append(frames, fi)
		}
		sort.Ints(frames)
		covered := 0
		for _, fi := range frames {
			if _, ok := lovo.System().Keyframe(inst.VideoID, fi); ok {
				covered++
			}
		}
		fmt.Printf("GT#%d v%d track %d: %d query-frames %v, %d on keyframes\n", gi, inst.VideoID, inst.Track, len(frames), frames, covered)
	}
	res, _, err := lovo.Query(*qText, metrics.Depth(gt))
	if err != nil {
		panic(err)
	}
	last := lovo.LastResult()
	fmt.Printf("candidate frames: %d, fast=%v rerank=%v\n", last.CandidateFrames, last.FastSearch, last.Rerank)
	fmt.Printf("collection entities: %d\n", lovo.System().Collection().Len())
	labels := metrics.Match(res, gt, metrics.DefaultIoU)
	fmt.Printf("AP = %.3f, results = %d\n", metrics.AveragePrecision(res, gt, metrics.DefaultIoU), len(res))
	for i, r := range res {
		if i >= *maxout {
			break
		}
		lab := "FP"
		if labels[i] >= 0 {
			lab = fmt.Sprintf("TP#%d", labels[i])
		} else if labels[i] == metrics.LabelDup {
			lab = "dup"
		}
		// identify the object under the box
		var under string
		for vi := range ds.Videos {
			if ds.Videos[vi].ID != r.VideoID {
				continue
			}
			f := &ds.Videos[vi].Frames[r.FrameIdx]
			bi, bIoU := -1, 0.0
			for oi := range f.Objects {
				if iou := f.Objects[oi].Box.IoU(r.Box); iou > bIoU {
					bi, bIoU = oi, iou
				}
			}
			if bi >= 0 {
				under = fmt.Sprintf("%s %v iou=%.2f", f.Objects[bi].Class, f.Objects[bi].Attrs, bIoU)
			}
		}
		fmt.Printf("%2d. v%d f%-4d score=%.4f  %-5s %s\n", i+1, r.VideoID, r.FrameIdx, r.Score, lab, under)
	}
}
