// Package lovo is the public API of the LOVO reproduction: an efficient
// complex-object query system for large-scale video datasets (ICDE 2025).
//
// LOVO performs one-time, query-agnostic feature extraction over video
// keyframes, stores compact patch-level class embeddings under a
// product-quantized inverted multi-index in an embedded vector database
// (with bounding boxes and frame IDs in a relational side-store joined by
// patch ID), and answers natural-language object queries with a two-stage
// strategy: approximate nearest-neighbour fast search followed by a
// cross-modality transformer rerank.
//
// Quickstart:
//
//	sys, _ := lovo.Open(lovo.Options{Seed: 1})
//	ds, _ := lovo.LoadDataset("bellevue", lovo.DatasetConfig{Seed: 1, Scale: 0.2})
//	_ = sys.IngestDataset(ds)
//	_ = sys.BuildIndex()
//	res, _ := sys.Query("A red car driving in the center of the road.", lovo.QueryOptions{})
//	for _, obj := range res.Objects {
//		fmt.Println(obj.VideoID, obj.FrameIdx, obj.Box, obj.Score)
//	}
//
// Videos here are synthetic scene descriptions (see internal/video and
// DESIGN.md): the repository reproduces the paper's system behaviour and
// evaluation shape without GPU encoders or raw footage.
package lovo

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/keyframe"
	"repro/internal/vectordb"
	"repro/internal/video"
)

// Re-exported data types. These alias internal types so downstream code
// only imports this package.
type (
	// Video is an ordered sequence of frames.
	Video = video.Video
	// Frame is one scene snapshot.
	Frame = video.Frame
	// Object is one object observation within a frame.
	Object = video.Object
	// Box is a normalised bounding box.
	Box = video.Box
	// Result is a ranked query answer with stage timings.
	Result = core.Result
	// ResultObject is one retrieved object.
	ResultObject = core.ResultObject
	// QueryOptions tunes a single query (rerank/ANNS ablations, depths).
	QueryOptions = core.QueryOptions
	// IngestStats reports Video Summary counters and timings.
	IngestStats = core.IngestStats
	// Dataset is a generated benchmark workload.
	Dataset = datasets.Dataset
	// DatasetConfig controls workload generation (seed, fps, scale).
	DatasetConfig = datasets.Config
	// DatasetQuery is one benchmark query of a dataset.
	DatasetQuery = datasets.Query
)

// Options configure a LOVO system.
type Options struct {
	// Seed drives all randomness; equal seeds give identical systems.
	Seed uint64
	// Index selects the vector index: "imi" (default, the paper's
	// inverted multi-index), "ivfpq", "hnsw" or "flat".
	Index string
	// Keyframes selects the extraction strategy: "mvmed" (default),
	// "uniform" or "all" (the w/o-keyframe ablation).
	Keyframes string
	// FastK is the fast-search candidate count (default 100).
	FastK int
	// TopN is the number of reranked frames returned (default 10).
	TopN int
	// NProbe is the number of clusters probed per subspace (default 8).
	NProbe int
	// Dim and ProjDim set the embedding dimensions D and D′ (defaults
	// 64 and 32).
	Dim, ProjDim int
	// Streaming enables segmented incremental indexing: each BuildIndex
	// seals the current segment instead of rebuilding, so continuously
	// arriving footage never pays a full-index rebuild (the paper's
	// Section IX future work).
	Streaming bool
	// SegmentSize is the streaming seal threshold (default 4096 vectors).
	SegmentSize int
	// Workers bounds the goroutines of the concurrent execution engine:
	// keyframe encoding during ingest, the stage-2 rerank fan-out, and
	// the default QueryBatch client pool. Zero means runtime.NumCPU();
	// 1 forces the serial paths. Results are identical at every setting.
	Workers int
}

// System is a LOVO instance.
type System struct {
	inner *core.System
}

// Open constructs a system.
func Open(opts Options) (*System, error) {
	cfg := core.Config{
		Seed:        opts.Seed,
		FastK:       opts.FastK,
		TopN:        opts.TopN,
		NProbe:      opts.NProbe,
		Dim:         opts.Dim,
		ProjDim:     opts.ProjDim,
		Streaming:   opts.Streaming,
		SegmentSize: opts.SegmentSize,
		Workers:     opts.Workers,
	}
	switch opts.Index {
	case "", "imi":
		cfg.Index = vectordb.IndexIMI
	case "ivfpq":
		cfg.Index = vectordb.IndexIVFPQ
	case "hnsw":
		cfg.Index = vectordb.IndexHNSW
	case "flat", "bf":
		cfg.Index = vectordb.IndexFlat
	default:
		return nil, fmt.Errorf("lovo: unknown index %q", opts.Index)
	}
	switch opts.Keyframes {
	case "", "mvmed":
		cfg.Keyframe = keyframe.MVMed{}
	case "uniform":
		cfg.Keyframe = keyframe.Uniform{}
	case "all":
		cfg.Keyframe = keyframe.All{}
	default:
		return nil, fmt.Errorf("lovo: unknown keyframe strategy %q", opts.Keyframes)
	}
	inner, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &System{inner: inner}, nil
}

// Ingest runs one-time Video Summary over a video.
func (s *System) Ingest(v *Video) error { return s.inner.Ingest(v) }

// IngestDataset ingests every video of a dataset.
func (s *System) IngestDataset(ds *Dataset) error {
	for i := range ds.Videos {
		if err := s.inner.Ingest(&ds.Videos[i]); err != nil {
			return err
		}
	}
	return nil
}

// BuildIndex constructs the vector index over everything ingested.
func (s *System) BuildIndex() error { return s.inner.BuildIndex() }

// Query answers a natural-language object query (Algorithm 2). Queries may
// run from many goroutines concurrently, including while Ingest continues.
func (s *System) Query(text string, opts QueryOptions) (*Result, error) {
	return s.inner.Query(text, opts)
}

// QueryBatch answers many queries concurrently across at most clients
// goroutines (zero uses the system's Workers setting, which defaults to
// runtime.NumCPU()). Results align with texts, and each equals what a lone
// Query call would return; the first failing query aborts the batch.
func (s *System) QueryBatch(texts []string, opts QueryOptions, clients int) ([]*Result, error) {
	return s.inner.QueryBatch(texts, opts, clients)
}

// Stats returns ingest statistics.
func (s *System) Stats() IngestStats { return s.inner.Stats() }

// Core exposes the underlying system for experiment harnesses.
func (s *System) Core() *core.System { return s.inner }

// LoadDataset generates a named benchmark dataset: "cityscapes",
// "bellevue", "qvhighlights", "beach" or "activitynet".
func LoadDataset(name string, cfg DatasetConfig) (*Dataset, error) {
	return datasets.ByName(name, cfg)
}
