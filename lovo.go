// Package lovo is the public API of the LOVO reproduction: an efficient
// complex-object query system for large-scale video datasets (ICDE 2025).
//
// LOVO performs one-time, query-agnostic feature extraction over video
// keyframes, stores compact patch-level class embeddings under a
// product-quantized inverted multi-index in an embedded vector database
// (with bounding boxes and frame IDs in a relational side-store joined by
// patch ID), and answers natural-language object queries with a two-stage
// strategy: approximate nearest-neighbour fast search followed by a
// cross-modality transformer rerank.
//
// Quickstart:
//
//	sys, _ := lovo.Open(lovo.Options{Seed: 1})
//	ds, _ := lovo.LoadDataset("bellevue", lovo.DatasetConfig{Seed: 1, Scale: 0.2})
//	_ = sys.IngestDataset(ds)
//	_ = sys.BuildIndex()
//	res, _ := sys.Query("A red car driving in the center of the road.", lovo.QueryOptions{})
//	for _, obj := range res.Objects {
//		fmt.Println(obj.VideoID, obj.FrameIdx, obj.Box, obj.Score)
//	}
//
// Videos here are synthetic scene descriptions (see internal/video and
// DESIGN.md): the repository reproduces the paper's system behaviour and
// evaluation shape without GPU encoders or raw footage.
package lovo

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/keyframe"
	"repro/internal/shard"
	"repro/internal/vectordb"
	"repro/internal/video"
)

// Re-exported data types. These alias internal types so downstream code
// only imports this package.
type (
	// Video is an ordered sequence of frames.
	Video = video.Video
	// Frame is one scene snapshot.
	Frame = video.Frame
	// Object is one object observation within a frame.
	Object = video.Object
	// Box is a normalised bounding box.
	Box = video.Box
	// Result is a ranked query answer with stage timings.
	Result = core.Result
	// ResultObject is one retrieved object.
	ResultObject = core.ResultObject
	// QueryOptions tunes a single query (rerank/ANNS ablations, depths,
	// the MinRecall accuracy bound, and plan pinning via Plan).
	QueryOptions = core.QueryOptions
	// Plan is an explicit, executable description of one query: every
	// stage-1 and stage-2 knob resolved to a concrete value. Obtain one
	// from PlanQuery and pin it via QueryOptions.Plan to replay the exact
	// same execution later — a pinned plan answers byte-identically on
	// every deployment shape (single system, sharded, replicated, remote).
	Plan = core.Plan
	// IngestStats reports Video Summary counters and timings.
	IngestStats = core.IngestStats
	// Dataset is a generated benchmark workload.
	Dataset = datasets.Dataset
	// DatasetConfig controls workload generation (seed, fps, scale).
	DatasetConfig = datasets.Config
	// DatasetQuery is one benchmark query of a dataset.
	DatasetQuery = datasets.Query
)

// Options configure a LOVO system.
type Options struct {
	// Seed drives all randomness; equal seeds give identical systems.
	Seed uint64
	// Index selects the vector index: "imi" (default, the paper's
	// inverted multi-index), "ivfpq", "hnsw" or "flat".
	Index string
	// Keyframes selects the extraction strategy: "mvmed" (default),
	// "uniform" or "all" (the w/o-keyframe ablation).
	Keyframes string
	// FastK is the fast-search candidate count (default 100).
	FastK int
	// TopN is the number of reranked frames returned (default 10).
	TopN int
	// NProbe is the number of clusters probed per subspace (default 8).
	NProbe int
	// Dim and ProjDim set the embedding dimensions D and D′ (defaults
	// 64 and 32).
	Dim, ProjDim int
	// Streaming enables segmented incremental indexing: each BuildIndex
	// seals the current segment instead of rebuilding, so continuously
	// arriving footage never pays a full-index rebuild (the paper's
	// Section IX future work).
	Streaming bool
	// SegmentSize is the streaming seal threshold (default 4096 vectors).
	SegmentSize int
	// Workers bounds the goroutines of the concurrent execution engine:
	// keyframe encoding during ingest, the stage-2 rerank fan-out, and
	// the default QueryBatch client pool. Zero means runtime.NumCPU();
	// 1 forces the serial paths. Results are identical at every setting.
	Workers int
	// Shards partitions the corpus across N independent shard systems by
	// video ID and answers queries by scatter-gather: every shard
	// fast-searches its local index, hits merge into the deterministic
	// global top-k (score, then patch ID), and candidate frames rerank
	// on the shard owning their keyframes. Zero or one keeps the
	// single-system path; a one-shard engine answers byte-identically to
	// it. Ingest of a dataset fans out across shards in parallel.
	Shards int
	// Replicas runs R copies of every shard for read throughput and
	// failover: ingest and index builds fan out to all replicas of the
	// owning shard (equal seeds keep them byte-identical by
	// construction), each query leg picks one replica (round-robin with
	// an in-flight-aware tiebreak), and a replica that errors is marked
	// unhealthy and transparently failed over — answers are the same
	// bytes whichever replica serves, as long as one replica per shard
	// survives. Zero or one keeps single copies. Replicas > 1 forces the
	// engine path even when Shards <= 1.
	Replicas int
}

// System is a LOVO instance: a single core system, or a sharded
// scatter-gather engine when Options.Shards > 1.
type System struct {
	inner  *core.System  // nil when sharded
	engine *shard.Engine // nil when unsharded
}

// Open constructs a system.
func Open(opts Options) (*System, error) {
	cfg := core.Config{
		Seed:        opts.Seed,
		FastK:       opts.FastK,
		TopN:        opts.TopN,
		NProbe:      opts.NProbe,
		Dim:         opts.Dim,
		ProjDim:     opts.ProjDim,
		Streaming:   opts.Streaming,
		SegmentSize: opts.SegmentSize,
		Workers:     opts.Workers,
	}
	switch opts.Index {
	case "", "imi":
		cfg.Index = vectordb.IndexIMI
	case "ivfpq":
		cfg.Index = vectordb.IndexIVFPQ
	case "hnsw":
		cfg.Index = vectordb.IndexHNSW
	case "flat", "bf":
		cfg.Index = vectordb.IndexFlat
	default:
		return nil, fmt.Errorf("lovo: unknown index %q", opts.Index)
	}
	switch opts.Keyframes {
	case "", "mvmed":
		cfg.Keyframe = keyframe.MVMed{}
	case "uniform":
		cfg.Keyframe = keyframe.Uniform{}
	case "all":
		cfg.Keyframe = keyframe.All{}
	default:
		return nil, fmt.Errorf("lovo: unknown keyframe strategy %q", opts.Keyframes)
	}
	if opts.Shards > 1 || opts.Replicas > 1 {
		n, r := opts.Shards, opts.Replicas
		if n < 1 {
			n = 1
		}
		if r < 1 {
			r = 1
		}
		engine, err := shard.NewReplicated(n, r, cfg)
		if err != nil {
			return nil, err
		}
		return &System{engine: engine}, nil
	}
	inner, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &System{inner: inner}, nil
}

// Ingest runs one-time Video Summary over a video. On a sharded system the
// video routes to the shard owning its ID.
func (s *System) Ingest(v *Video) error {
	if s.engine != nil {
		return s.engine.Ingest(v)
	}
	return s.inner.Ingest(v)
}

// IngestDataset ingests every video of a dataset. On a sharded system the
// dataset fans out across shards in parallel.
func (s *System) IngestDataset(ds *Dataset) error {
	if s.engine != nil {
		return s.engine.IngestDataset(ds)
	}
	for i := range ds.Videos {
		if err := s.inner.Ingest(&ds.Videos[i]); err != nil {
			return err
		}
	}
	return nil
}

// BuildIndex constructs the vector index over everything ingested (every
// non-empty shard's index, in parallel, when sharded).
func (s *System) BuildIndex() error {
	if s.engine != nil {
		return s.engine.BuildIndex()
	}
	return s.inner.BuildIndex()
}

// Query answers a natural-language object query (Algorithm 2). Queries may
// run from many goroutines concurrently, including while Ingest continues.
// On a sharded system both stages scatter and the merged answer is
// deterministic — byte-identical to the single-system path for one shard.
//
// With no options set, Query executes the system's fixed default plan.
// Setting QueryOptions.MinRecall (in (0, 1]) instead asks the cost-based
// planner for the cheapest plan predicted to reach that stage-1 recall,
// calibrated against exact-search ground truth at build time; setting
// QueryOptions.Plan replays a previously resolved plan verbatim.
func (s *System) Query(text string, opts QueryOptions) (*Result, error) {
	if s.engine != nil {
		return s.engine.Query(text, opts)
	}
	return s.inner.Query(text, opts)
}

// PlanQuery resolves the plan Query would execute for text under opts —
// the fixed defaults, the caller's pinned plan normalized, or the
// planner's cheapest bound-satisfying plan when MinRecall is set —
// without executing it. Pin the returned plan via QueryOptions.Plan to
// replay it byte-identically, on this system or any other deployment
// shape built from the same corpus and seed.
func (s *System) PlanQuery(text string, opts QueryOptions) (Plan, error) {
	if s.engine != nil {
		return s.engine.PlanQuery(text, opts)
	}
	return s.inner.PlanQuery(text, opts)
}

// QueryBatch answers many queries concurrently across at most clients
// goroutines (zero uses the system's Workers setting, which defaults to
// runtime.NumCPU()). Results align with texts, and each equals what a lone
// Query call would return; the first failing query aborts the batch.
func (s *System) QueryBatch(texts []string, opts QueryOptions, clients int) ([]*Result, error) {
	if s.engine != nil {
		return s.engine.QueryBatch(texts, opts, clients)
	}
	return s.inner.QueryBatch(texts, opts, clients)
}

// Stats returns ingest statistics (aggregated across shards when sharded).
func (s *System) Stats() IngestStats {
	if s.engine != nil {
		return s.engine.Stats()
	}
	return s.inner.Stats()
}

// Core exposes the underlying system for experiment harnesses. It is nil
// on a sharded system — use Engine there.
func (s *System) Core() *core.System { return s.inner }

// Engine exposes the scatter-gather engine of a sharded system (nil when
// Options.Shards <= 1). It satisfies the serving tier's Backend interface,
// so it can be mounted directly behind internal/server.
func (s *System) Engine() *shard.Engine { return s.engine }

// Save persists the full system state — patch vectors with the index
// recipe, relational metadata, keyframes and stats — so a later Load
// serves queries without re-running Video Summary. Unsupported in
// streaming mode. Must not run concurrently with Ingest or BuildIndex.
func (s *System) Save(w io.Writer) error {
	if s.engine != nil {
		return s.engine.SaveSnapshot(w)
	}
	return s.inner.SaveSnapshot(w)
}

// Load restores a snapshot written by Save into this freshly-opened,
// empty system. Open with the same Options as the saver (seed, dimensions
// and shard count must match; the index is rebuilt from the recorded
// recipe). Replica counts need not match: snapshots hold one copy per
// shard and Load fans each shard's state out to every replica.
func (s *System) Load(r io.Reader) error {
	if s.engine != nil {
		return s.engine.LoadSnapshot(r)
	}
	return s.inner.LoadSnapshot(r)
}

// LoadDataset generates a named benchmark dataset: "cityscapes",
// "bellevue", "qvhighlights", "beach" or "activitynet".
func LoadDataset(name string, cfg DatasetConfig) (*Dataset, error) {
	return datasets.ByName(name, cfg)
}
